// Tests for psn::forward: the trace-driven simulator semantics and every
// forwarding algorithm on engineered scenarios.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "psn/forward/algorithm_registry.hpp"
#include "psn/forward/algorithms/direct.hpp"
#include "psn/forward/algorithms/epidemic.hpp"
#include "psn/forward/algorithms/fresh.hpp"
#include "psn/forward/algorithms/greedy.hpp"
#include "psn/forward/algorithms/greedy_online.hpp"
#include "psn/forward/algorithms/greedy_total.hpp"
#include "psn/forward/algorithms/min_expected_delay.hpp"
#include "psn/forward/algorithms/prophet.hpp"
#include "psn/forward/algorithms/randomized.hpp"
#include "psn/forward/algorithms/spray_and_wait.hpp"
#include "psn/forward/simulator.hpp"

namespace psn::forward {
namespace {

using trace::Contact;
using trace::ContactTrace;

struct Fixture {
  ContactTrace trace;
  graph::SpaceTimeGraph graph;

  Fixture(std::vector<Contact> cs, NodeId n, Seconds t_max)
      : trace(std::move(cs), n, t_max), graph(trace, 10.0) {}

  SimulationResult run(ForwardingAlgorithm& alg,
                       const std::vector<Message>& msgs) const {
    return simulate(request(alg, msgs));
  }

  SimulationRequest request(ForwardingAlgorithm& alg,
                            const std::vector<Message>& msgs) const {
    SimulationRequest r;
    r.algorithm = &alg;
    r.graph = &graph;
    r.trace = &trace;
    r.messages = &msgs;
    return r;
  }
};

Message msg(std::uint32_t id, NodeId src, NodeId dst, Seconds t) {
  return Message{id, src, dst, t};
}

TEST(Simulator, DirectContactDeliversForEveryAlgorithm) {
  const Fixture f({Contact::make(0, 1, 10.0, 15.0)}, 2, 60.0);
  for (auto& alg : make_extended_algorithms()) {
    const auto r = f.run(*alg, {msg(0, 0, 1, 0.0)});
    ASSERT_TRUE(r.outcomes[0].delivered) << alg->name();
    EXPECT_DOUBLE_EQ(r.outcomes[0].delay, 20.0) << alg->name();
  }
}

TEST(Simulator, UndeliverableMessageFailsForEveryAlgorithm) {
  const Fixture f({Contact::make(0, 1, 10.0, 15.0)}, 3, 60.0);
  for (auto& alg : make_extended_algorithms()) {
    const auto r = f.run(*alg, {msg(0, 0, 2, 0.0)});
    EXPECT_FALSE(r.outcomes[0].delivered) << alg->name();
  }
}

TEST(Simulator, MessageCreatedAfterOnlyContactFails) {
  const Fixture f({Contact::make(0, 1, 10.0, 15.0)}, 2, 60.0);
  EpidemicForwarding epidemic;
  const auto r = f.run(epidemic, {msg(0, 0, 1, 30.0)});
  EXPECT_FALSE(r.outcomes[0].delivered);
}

TEST(Simulator, RejectsBadMessages) {
  const Fixture f({Contact::make(0, 1, 0.0, 5.0)}, 2, 60.0);
  EpidemicForwarding epidemic;
  EXPECT_THROW((void)f.run(epidemic, {msg(0, 0, 0, 0.0)}),
               std::invalid_argument);
  EXPECT_THROW((void)f.run(epidemic, {msg(0, 0, 7, 0.0)}),
               std::invalid_argument);
}

TEST(Epidemic, UsesMultiHopPathsOverTime) {
  const Fixture f(
      {
          Contact::make(0, 1, 0.0, 5.0),
          Contact::make(1, 2, 20.0, 25.0),
          Contact::make(2, 3, 40.0, 45.0),
      },
      4, 60.0);
  EpidemicForwarding epidemic;
  const auto r = f.run(epidemic, {msg(0, 0, 3, 0.0)});
  ASSERT_TRUE(r.outcomes[0].delivered);
  EXPECT_DOUBLE_EQ(r.outcomes[0].delay, 50.0);
  // Hop levels are tracked through the flooding fast path: 0->1->2->3.
  EXPECT_EQ(r.outcomes[0].hops, 3u);
}

TEST(Epidemic, ZeroWeightClosureWithinStep) {
  const Fixture f(
      {
          Contact::make(0, 1, 0.0, 5.0),
          Contact::make(1, 2, 0.0, 5.0),
          Contact::make(2, 3, 0.0, 5.0),
      },
      4, 30.0);
  EpidemicForwarding epidemic;
  const auto r = f.run(epidemic, {msg(0, 0, 3, 0.0)});
  ASSERT_TRUE(r.outcomes[0].delivered);
  EXPECT_DOUBLE_EQ(r.outcomes[0].delay, 10.0);
  // Three contact edges crossed within the one step.
  EXPECT_EQ(r.outcomes[0].hops, 3u);
}

TEST(Epidemic, HopCountIsMinimalOverHolderChains) {
  // Two routes to the destination open in the same step: a long chain
  // through 1-2-3 and a direct source contact. The delivering copy's hop
  // count is the shortest chain within the closure.
  const Fixture f(
      {
          Contact::make(0, 1, 0.0, 5.0),
          Contact::make(1, 2, 0.0, 5.0),
          Contact::make(2, 3, 0.0, 5.0),
          Contact::make(3, 4, 0.0, 5.0),
          Contact::make(0, 4, 0.0, 5.0),
      },
      5, 30.0);
  EpidemicForwarding epidemic;
  const auto r = f.run(epidemic, {msg(0, 0, 4, 0.0)});
  ASSERT_TRUE(r.outcomes[0].delivered);
  EXPECT_EQ(r.outcomes[0].hops, 1u);  // direct 0-4 beats 0-1-2-3-4.
}

TEST(Epidemic, HopLevelsAccumulateAcrossSteps) {
  // The flood spreads 0 -> {1} in step 0, {0,1} -> {2} in step 2 (via the
  // 1-2 contact), and delivers from 2 in step 4; the delivering copy's
  // level must count hops from the original source across steps.
  const Fixture f(
      {
          Contact::make(0, 1, 0.0, 5.0),
          Contact::make(1, 2, 20.0, 25.0),
          Contact::make(2, 3, 40.0, 45.0),
          Contact::make(0, 3, 41.0, 44.0),  // dest also meets source late
      },
      4, 60.0);
  EpidemicForwarding epidemic;
  const auto r = f.run(epidemic, {msg(0, 0, 3, 0.0)});
  ASSERT_TRUE(r.outcomes[0].delivered);
  EXPECT_DOUBLE_EQ(r.outcomes[0].delay, 50.0);
  // In step 4 the component is {0, 2, 3}: the source delivers directly.
  EXPECT_EQ(r.outcomes[0].hops, 1u);
}

TEST(Simulator, RelayTruncationIsCountedNotSilent) {
  // With max_relay_passes = 1, the one allowed pass still makes progress
  // (the 0-1 delivery), so the fixpoint is never verified: the step must
  // be counted as truncated rather than silently cut off.
  const Fixture f({Contact::make(0, 1, 0.0, 5.0)}, 2, 30.0);
  FreshForwarding fresh;  // generic (non-flooding) path
  const std::vector<Message> msgs = {msg(0, 0, 1, 0.0)};
  auto request = f.request(fresh, msgs);
  request.max_relay_passes = 1;
  const auto truncated = simulate(request);
  EXPECT_TRUE(truncated.outcomes[0].delivered);
  EXPECT_EQ(truncated.truncated_relay_steps, 1u);

  // With the default bound the fixpoint converges and nothing truncates.
  const auto converged = f.run(fresh, {msg(0, 0, 1, 0.0)});
  EXPECT_TRUE(converged.outcomes[0].delivered);
  EXPECT_EQ(converged.truncated_relay_steps, 0u);
}

TEST(Direct, OnlySourceMeetingDestinationDelivers) {
  const Fixture f(
      {
          Contact::make(0, 1, 0.0, 5.0),     // relay opportunity (unused)
          Contact::make(1, 2, 20.0, 25.0),   // relay could deliver here
          Contact::make(0, 2, 40.0, 45.0),   // source meets destination
      },
      3, 60.0);
  DirectDelivery direct;
  const auto r = f.run(direct, {msg(0, 0, 2, 0.0)});
  ASSERT_TRUE(r.outcomes[0].delivered);
  EXPECT_DOUBLE_EQ(r.outcomes[0].delay, 50.0);  // not 30: no relaying.
  EXPECT_EQ(r.outcomes[0].hops, 1u);
}

TEST(Fresh, ForwardsToNodeWithMoreRecentEncounter) {
  // Node 1 met the destination (3) recently; node 0 never did. On contact
  // 0-1, FRESH hands the message to 1, which delivers on its next meeting.
  const Fixture f(
      {
          Contact::make(1, 3, 0.0, 5.0),     // 1 meets dest early
          Contact::make(0, 1, 20.0, 25.0),   // handoff
          Contact::make(1, 3, 40.0, 45.0),   // delivery
      },
      4, 60.0);
  FreshForwarding fresh;
  const auto r = f.run(fresh, {msg(0, 0, 3, 10.0)});
  ASSERT_TRUE(r.outcomes[0].delivered);
  EXPECT_DOUBLE_EQ(r.outcomes[0].delay, 40.0);
  EXPECT_EQ(r.outcomes[0].hops, 2u);
}

TEST(Fresh, DoesNotForwardWhenNeitherMetDestination) {
  const Fixture f(
      {
          Contact::make(0, 1, 0.0, 5.0),
          Contact::make(1, 2, 20.0, 25.0),
      },
      3, 60.0);
  FreshForwarding fresh;
  const auto r = f.run(fresh, {msg(0, 0, 2, 0.0)});
  // 0 keeps the message (1 has no fresher info at handoff time, both -1),
  // so the 1-2 contact is useless and the message fails.
  EXPECT_FALSE(r.outcomes[0].delivered);
}

TEST(Greedy, CountsBeatRecency) {
  // Node 1 met dest twice long ago; node 2 met dest once recently.
  // Greedy prefers node 1 over the holder, FRESH would prefer node 2.
  const Fixture f(
      {
          Contact::make(1, 4, 0.0, 2.0),
          Contact::make(1, 4, 10.0, 12.0),
          Contact::make(2, 4, 20.0, 22.0),
          Contact::make(0, 1, 40.0, 45.0),  // holder meets 1: forward
          Contact::make(1, 4, 60.0, 65.0),  // 1 delivers
      },
      5, 100.0);
  GreedyForwarding greedy;
  const auto r = f.run(greedy, {msg(0, 0, 4, 30.0)});
  ASSERT_TRUE(r.outcomes[0].delivered);
  EXPECT_DOUBLE_EQ(r.outcomes[0].delay, 40.0);
}

TEST(Greedy, CountsContactEventsNotSteps) {
  // One long contact (many steps) counts once; two short contacts count
  // twice, so node 2 wins over node 1.
  const Fixture f(
      {
          Contact::make(1, 4, 0.0, 50.0),   // long: 1 event for node 1
          Contact::make(2, 4, 0.0, 2.0),    // short
          Contact::make(2, 4, 20.0, 22.0),  // short again: 2 events
          Contact::make(1, 2, 60.0, 65.0),  // if 1 held a message...
      },
      5, 100.0);
  GreedyForwarding greedy;
  greedy.prepare(f.graph, f.trace);
  // Feed history directly.
  greedy.observe_contact(1, 4, 0, true);
  greedy.observe_contact(1, 4, 1, false);  // continuation: ignored
  greedy.observe_contact(2, 4, 0, true);
  greedy.observe_contact(2, 4, 2, true);
  EXPECT_TRUE(greedy.should_forward(1, 2, 4, 3, 1));
  EXPECT_FALSE(greedy.should_forward(2, 1, 4, 3, 1));
}

TEST(GreedyTotal, OracleKnowsFutureContacts) {
  // Node 2's contacts all happen after the decision step; Greedy Total
  // still prefers it (future knowledge), Greedy Online does not.
  const Fixture f(
      {
          Contact::make(0, 1, 0.0, 5.0),      // the decision contact
          Contact::make(2, 3, 50.0, 55.0),
          Contact::make(2, 3, 60.0, 65.0),
          Contact::make(2, 3, 70.0, 75.0),
      },
      4, 100.0);
  GreedyTotalForwarding total;
  total.prepare(f.graph, f.trace);
  // Node 1 has 1 total contact, node 0 has 1; node 2 has 3.
  EXPECT_TRUE(total.should_forward(0, 2, 3, 0, 1));
  EXPECT_FALSE(total.should_forward(0, 1, 3, 0, 1));

  GreedyOnlineForwarding online;
  online.prepare(f.graph, f.trace);
  // At step 0, node 2 has no contacts yet.
  online.observe_contact(0, 1, 0, true);
  EXPECT_FALSE(online.should_forward(0, 2, 3, 0, 1));
}

TEST(GreedyOnline, PrefersBusierNodeSoFar) {
  GreedyOnlineForwarding online;
  const Fixture f({Contact::make(0, 1, 0.0, 5.0)}, 4, 60.0);
  online.prepare(f.graph, f.trace);
  online.observe_contact(1, 2, 0, true);
  online.observe_contact(1, 3, 0, true);
  online.observe_contact(0, 2, 0, true);
  // Node 1: 2 contacts; node 0: 1 contact.
  EXPECT_TRUE(online.should_forward(0, 1, 3, 1, 1));
  EXPECT_FALSE(online.should_forward(1, 0, 3, 1, 1));
}

TEST(MinExpectedDelay, DistancesFollowMeanGaps) {
  // 0-1 meet frequently, 1-2 meet frequently, 0-2 never: the expected
  // delay 0->2 should be finite via node 1.
  std::vector<Contact> cs;
  for (int i = 0; i < 20; ++i) {
    cs.push_back(Contact::make(0, 1, i * 100.0, i * 100.0 + 5.0));
    cs.push_back(Contact::make(1, 2, i * 100.0 + 50.0, i * 100.0 + 55.0));
  }
  const Fixture f(std::move(cs), 3, 2000.0);
  MinExpectedDelayForwarding meed;
  meed.prepare(f.graph, f.trace);
  EXPECT_LT(meed.distance(0, 1), 200.0);
  EXPECT_LT(meed.distance(0, 2), 400.0);
  EXPECT_GT(meed.distance(0, 2), 0.0);
  // Forwarding from 0 to 1 for destination 2 is an improvement.
  EXPECT_TRUE(meed.should_forward(0, 1, 2, 0, 1));
  EXPECT_FALSE(meed.should_forward(1, 0, 2, 0, 1));
}

TEST(MinExpectedDelay, EndToEndDelivery) {
  std::vector<Contact> cs;
  for (int i = 0; i < 10; ++i) {
    cs.push_back(Contact::make(0, 1, i * 100.0, i * 100.0 + 5.0));
    cs.push_back(Contact::make(1, 2, i * 100.0 + 50.0, i * 100.0 + 55.0));
  }
  const Fixture f(std::move(cs), 3, 1000.0);
  MinExpectedDelayForwarding meed;
  const auto r = f.run(meed, {msg(0, 0, 2, 10.0)});
  ASSERT_TRUE(r.outcomes[0].delivered);
  EXPECT_EQ(r.outcomes[0].hops, 2u);
}

TEST(SprayAndWait, RespectsCopyBudget) {
  // Star: source meets 5 relays in sequence; with L = 4 only a limited
  // number of nodes may end up holding copies.
  std::vector<Contact> cs;
  for (NodeId relay = 1; relay <= 5; ++relay)
    cs.push_back(
        Contact::make(0, relay, relay * 20.0, relay * 20.0 + 5.0));
  const Fixture f(std::move(cs), 7, 200.0);
  SprayAndWaitForwarding spray(4);
  const auto r = f.run(spray, {msg(0, 0, 6, 0.0)});
  // Destination 6 never appears: undelivered, but the run must not crash
  // and the budget bounds replication (indirectly observable: determinism).
  EXPECT_FALSE(r.outcomes[0].delivered);
}

TEST(SprayAndWait, WaitPhaseStillDeliversDirect) {
  // One relay gets a copy; the relay (in wait phase, copies = 1) must not
  // forward to another relay but must deliver on meeting the destination.
  const Fixture f(
      {
          Contact::make(0, 1, 0.0, 5.0),    // spray: 1 gets half budget
          Contact::make(1, 2, 20.0, 25.0),  // wait: no handoff to 2
          Contact::make(1, 3, 40.0, 45.0),  // delivery to destination 3
      },
      4, 60.0);
  SprayAndWaitForwarding spray(2);
  const auto r = f.run(spray, {msg(0, 0, 3, 0.0)});
  ASSERT_TRUE(r.outcomes[0].delivered);
  EXPECT_DOUBLE_EQ(r.outcomes[0].delay, 50.0);
}

TEST(Prophet, EncounterRaisesPredictability) {
  const Fixture f({Contact::make(0, 1, 0.0, 5.0)}, 3, 60.0);
  ProphetForwarding prophet;
  prophet.prepare(f.graph, f.trace);
  EXPECT_DOUBLE_EQ(prophet.predictability(0, 1), 0.0);
  prophet.observe_contact(0, 1, 0, true);
  EXPECT_NEAR(prophet.predictability(0, 1), 0.75, 1e-12);
  prophet.observe_contact(0, 1, 1, true);
  EXPECT_NEAR(prophet.predictability(0, 1), 0.9375, 1e-12);
}

TEST(Prophet, AgingDecaysPredictability) {
  const Fixture f({Contact::make(0, 1, 0.0, 5.0)}, 3, 600.0);
  ProphetParams params;
  params.gamma = 0.5;
  params.aging_unit = 1;
  ProphetForwarding prophet(params);
  prophet.prepare(f.graph, f.trace);
  prophet.observe_contact(0, 1, 0, true);
  const double before = prophet.predictability(0, 1);
  // Trigger aging via a decision 10 steps later.
  (void)prophet.should_forward(0, 2, 1, 10, 1);
  EXPECT_LT(prophet.predictability(0, 1), before * 0.01);
}

TEST(Prophet, TransitivityPropagates) {
  const Fixture f({Contact::make(0, 1, 0.0, 5.0)}, 3, 60.0);
  ProphetForwarding prophet;
  prophet.prepare(f.graph, f.trace);
  prophet.observe_contact(1, 2, 0, true);  // 1 knows 2
  prophet.observe_contact(0, 1, 0, true);  // meeting 1 teaches 0 about 2
  EXPECT_GT(prophet.predictability(0, 2), 0.0);
  EXPECT_LT(prophet.predictability(0, 2), prophet.predictability(0, 1));
}

TEST(Randomized, DeterministicInSeedAndResets) {
  RandomizedForwarding r1(0.5, 99);
  RandomizedForwarding r2(0.5, 99);
  std::vector<bool> a;
  std::vector<bool> b;
  for (int i = 0; i < 50; ++i) {
    a.push_back(r1.should_forward(0, 1, 2, 0, 1));
    b.push_back(r2.should_forward(0, 1, 2, 0, 1));
  }
  EXPECT_EQ(a, b);
  r1.reset();
  std::vector<bool> c;
  for (int i = 0; i < 50; ++i)
    c.push_back(r1.should_forward(0, 1, 2, 0, 1));
  EXPECT_EQ(a, c);
}

TEST(Registry, PaperSuiteNamesAndOrder) {
  const auto algs = make_paper_algorithms();
  ASSERT_EQ(algs.size(), 6u);
  EXPECT_EQ(algs[0]->name(), "Epidemic");
  EXPECT_EQ(algs[1]->name(), "FRESH");
  EXPECT_EQ(algs[2]->name(), "Greedy");
  EXPECT_EQ(algs[3]->name(), "Greedy Total");
  EXPECT_EQ(algs[4]->name(), "Greedy Online");
  EXPECT_EQ(algs[5]->name(), "Dynamic Programming");
}

TEST(Registry, ExtendedSuiteAddsFour) {
  EXPECT_EQ(make_extended_algorithms().size(), 10u);
}

TEST(Simulator, MultipleMessagesIndependent) {
  const Fixture f(
      {
          Contact::make(0, 1, 10.0, 15.0),
          Contact::make(2, 3, 30.0, 35.0),
      },
      4, 60.0);
  EpidemicForwarding epidemic;
  const auto r = f.run(epidemic, {msg(0, 0, 1, 0.0), msg(1, 2, 3, 0.0),
                                  msg(2, 1, 2, 0.0)});
  EXPECT_TRUE(r.outcomes[0].delivered);
  EXPECT_TRUE(r.outcomes[1].delivered);
  EXPECT_FALSE(r.outcomes[2].delivered);
  EXPECT_DOUBLE_EQ(r.outcomes[0].delay, 20.0);
  EXPECT_DOUBLE_EQ(r.outcomes[1].delay, 40.0);
}

TEST(Simulator, TransmissionCostAccounting) {
  // Chain 0 -> 1 -> 2 over time under Epidemic: two relays + delivery...
  // Epidemic copies to 1 (1 tx), then 1 delivers to 2 (1 tx): 2 total.
  const Fixture f(
      {
          Contact::make(0, 1, 0.0, 5.0),
          Contact::make(1, 2, 20.0, 25.0),
      },
      3, 60.0);
  EpidemicForwarding epidemic;
  const auto r = f.run(epidemic, {msg(0, 0, 2, 0.0)});
  ASSERT_TRUE(r.outcomes[0].delivered);
  EXPECT_EQ(r.transmissions, 2u);
  EXPECT_DOUBLE_EQ(r.transmissions_per_message(), 2.0);
}

TEST(Simulator, DirectDeliveryCostsOneTransmission) {
  const Fixture f({Contact::make(0, 1, 0.0, 5.0)}, 2, 60.0);
  DirectDelivery direct;
  const auto r = f.run(direct, {msg(0, 0, 1, 0.0)});
  ASSERT_TRUE(r.outcomes[0].delivered);
  EXPECT_EQ(r.transmissions, 1u);
}

TEST(Simulator, EpidemicCostCountsAllCopies) {
  // Star component: source meets 3 relays and the destination in one step.
  // The flood copies to every component member: 3 copies + 1 delivery.
  const Fixture f(
      {
          Contact::make(0, 1, 0.0, 5.0),
          Contact::make(0, 2, 0.0, 5.0),
          Contact::make(0, 3, 0.0, 5.0),
          Contact::make(0, 4, 0.0, 5.0),
      },
      5, 30.0);
  EpidemicForwarding epidemic;
  const auto r = f.run(epidemic, {msg(0, 0, 4, 0.0)});
  ASSERT_TRUE(r.outcomes[0].delivered);
  EXPECT_EQ(r.transmissions, 4u);
}

TEST(Simulator, UndeliveredSingleCopyCostsNothingWithoutForwarding) {
  const Fixture f({Contact::make(1, 2, 0.0, 5.0)}, 4, 30.0);
  DirectDelivery direct;
  const auto r = f.run(direct, {msg(0, 0, 3, 0.0)});
  EXPECT_FALSE(r.outcomes[0].delivered);
  EXPECT_EQ(r.transmissions, 0u);
}

TEST(Simulator, DeterministicAcrossIdenticalRuns) {
  std::vector<Contact> cs;
  for (int i = 0; i < 30; ++i)
    cs.push_back(Contact::make(static_cast<NodeId>(i % 5),
                               static_cast<NodeId>(i % 5 + 1), i * 20.0,
                               i * 20.0 + 10.0));
  const Fixture f(std::move(cs), 7, 700.0);
  std::vector<Message> msgs;
  for (std::uint32_t i = 0; i < 10; ++i)
    msgs.push_back(msg(i, static_cast<NodeId>(i % 6),
                       static_cast<NodeId>((i + 3) % 6), i * 30.0));
  for (auto& alg : make_extended_algorithms()) {
    const auto a = f.run(*alg, msgs);
    const auto b = f.run(*alg, msgs);
    ASSERT_EQ(a.outcomes.size(), b.outcomes.size()) << alg->name();
    for (std::size_t i = 0; i < a.outcomes.size(); ++i) {
      EXPECT_EQ(a.outcomes[i].delivered, b.outcomes[i].delivered)
          << alg->name();
      EXPECT_DOUBLE_EQ(a.outcomes[i].delay, b.outcomes[i].delay)
          << alg->name();
    }
    EXPECT_EQ(a.transmissions, b.transmissions) << alg->name();
  }
}

TEST(Simulator, EmptyMessageListIsFine) {
  const Fixture f({Contact::make(0, 1, 0.0, 5.0)}, 2, 60.0);
  EpidemicForwarding epidemic;
  const auto r = f.run(epidemic, {});
  EXPECT_TRUE(r.outcomes.empty());
  EXPECT_EQ(r.transmissions, 0u);
}

// --- Sparse event timeline vs dense replay: the equivalence harness. ---
// The sparse path must be bit-identical to the pre-timeline dense replay
// for every algorithm — same outcomes, delays, hops, transmissions, and
// truncation counters.

void expect_results_identical(const SimulationResult& a,
                              const SimulationResult& b,
                              const std::string& label) {
  ASSERT_EQ(a.outcomes.size(), b.outcomes.size()) << label;
  for (std::size_t i = 0; i < a.outcomes.size(); ++i) {
    EXPECT_EQ(a.outcomes[i].delivered, b.outcomes[i].delivered)
        << label << " message " << i;
    EXPECT_EQ(a.outcomes[i].delay, b.outcomes[i].delay)
        << label << " message " << i;
    EXPECT_EQ(a.outcomes[i].hops, b.outcomes[i].hops)
        << label << " message " << i;
    EXPECT_EQ(a.outcomes[i].expired, b.outcomes[i].expired)
        << label << " message " << i;
    EXPECT_EQ(a.outcomes[i].dropped, b.outcomes[i].dropped)
        << label << " message " << i;
  }
  EXPECT_EQ(a.transmissions, b.transmissions) << label;
  EXPECT_EQ(a.truncated_relay_steps, b.truncated_relay_steps) << label;
  EXPECT_EQ(a.expirations, b.expirations) << label;
  EXPECT_EQ(a.evictions, b.evictions) << label;
  EXPECT_EQ(a.drops, b.drops) << label;
  EXPECT_EQ(a.budget_blocked, b.budget_blocked) << label;
  EXPECT_EQ(a.buffer_rejections, b.buffer_rejections) << label;
}

void expect_sparse_matches_dense(const Fixture& f,
                                 const std::vector<Message>& msgs,
                                 const TrafficConfig& traffic = {}) {
  for (auto& alg : make_extended_algorithms()) {
    auto dense = f.request(*alg, msgs);
    dense.traffic = traffic;
    dense.replay = ReplayMode::kDense;
    auto sparse = f.request(*alg, msgs);
    sparse.traffic = traffic;
    sparse.replay = ReplayMode::kSparse;
    const auto a = simulate(dense);
    const auto b = simulate(sparse);
    expect_results_identical(a, b, alg->name());
  }
}

TEST(SimulatorTimeline, EmptyTraceMatchesDense) {
  // No contacts at all: the sparse replay visits zero steps, the dense
  // replay scans six empty ones; both must report the same (undelivered)
  // outcomes for messages created anywhere in the window.
  const Fixture f({}, 3, 60.0);
  EXPECT_TRUE(f.graph.active_steps().empty());
  expect_sparse_matches_dense(
      f, {msg(0, 0, 1, 0.0), msg(1, 1, 2, 35.0), msg(2, 2, 0, 59.0)});
}

TEST(SimulatorTimeline, SingleContactAtStepZeroMatchesDense) {
  const Fixture f({Contact::make(0, 1, 0.0, 4.0)}, 3, 60.0);
  ASSERT_EQ(f.graph.num_active_steps(), 1u);
  ASSERT_EQ(f.graph.active_steps()[0], 0u);
  expect_sparse_matches_dense(f, {msg(0, 0, 1, 0.0),   // delivered at 0.
                                  msg(1, 0, 2, 0.0),   // never deliverable.
                                  msg(2, 1, 0, 30.0)});  // created after.
}

TEST(SimulatorTimeline, MessageCreatedAfterLastContactMatchesDense) {
  // Created after the final contact: dense activates it on a late empty
  // step, sparse never activates it — the outcome (undelivered) must be
  // identical.
  const Fixture f({Contact::make(0, 1, 10.0, 15.0)}, 3, 200.0);
  expect_sparse_matches_dense(f, {msg(0, 0, 1, 30.0), msg(1, 0, 1, 199.0)});
}

TEST(SimulatorTimeline, MessagesCreatedInsideSkippedGapMatchDense) {
  // Contacts in steps 0-1 and 9-10 with an 8-step silent gap in between;
  // messages created inside the gap must activate at the next active step
  // under the sparse timeline and behave exactly as under dense replay.
  const Fixture f(
      {
          Contact::make(0, 1, 5.0, 12.0),
          Contact::make(1, 2, 95.0, 105.0),
          Contact::make(0, 2, 98.0, 102.0),
      },
      4, 200.0);
  ASSERT_LT(f.graph.num_active_steps(), f.graph.num_steps());
  expect_sparse_matches_dense(f, {
                                     msg(0, 0, 2, 30.0),  // mid-gap creation.
                                     msg(1, 1, 0, 45.0),  // mid-gap creation.
                                     msg(2, 2, 3, 50.0),  // undeliverable.
                                     msg(3, 0, 1, 0.0),   // pre-gap creation.
                                 });
}

TEST(SimulatorTimeline, GapSpanningScenarioMatchesDenseForAllAlgorithms) {
  // A longer mixed scenario: bursts of contacts separated by gaps, with
  // messages created before, inside, and after gaps. Covers the relay
  // fixpoint, quota schemes, and oracle algorithms in one sweep.
  std::vector<Contact> cs;
  for (int burst = 0; burst < 5; ++burst) {
    const double t0 = burst * 200.0;
    cs.push_back(Contact::make(0, 1, t0 + 5.0, t0 + 15.0));
    cs.push_back(Contact::make(1, 2, t0 + 8.0, t0 + 18.0));
    cs.push_back(Contact::make(2, 3, t0 + 30.0, t0 + 42.0));
    cs.push_back(Contact::make(3, 4, t0 + 31.0, t0 + 41.0));
  }
  const Fixture f(std::move(cs), 6, 1000.0);
  ASSERT_LT(f.graph.num_active_steps(), f.graph.num_steps());
  std::vector<Message> msgs;
  for (std::uint32_t i = 0; i < 12; ++i)
    msgs.push_back(msg(i, static_cast<NodeId>(i % 5),
                       static_cast<NodeId>((i + 2) % 5), i * 80.0));
  expect_sparse_matches_dense(f, msgs);
}

// --- Holder-incident contact scan vs the full-replay scalar oracle. ---
// ContactScan::kHolderIncident lets eligible runs visit only steps and
// contacts incident to current message holders; ContactScan::kFull scans
// every contact of every active step and is retained as the permanent
// oracle. The two must be bit-identical for every algorithm — outcomes,
// delays, hops, transmissions, and every traffic counter — constrained
// or not.

std::vector<Contact> burst_gap_contacts() {
  std::vector<Contact> cs;
  for (int burst = 0; burst < 5; ++burst) {
    const double t0 = burst * 200.0;
    cs.push_back(Contact::make(0, 1, t0 + 5.0, t0 + 15.0));
    cs.push_back(Contact::make(1, 2, t0 + 8.0, t0 + 18.0));
    cs.push_back(Contact::make(2, 3, t0 + 30.0, t0 + 42.0));
    cs.push_back(Contact::make(3, 4, t0 + 31.0, t0 + 41.0));
    // A side pair no message route touches: the fast path must skip it,
    // the oracle scans it, and the results must still agree.
    cs.push_back(Contact::make(5, 6, t0 + 50.0, t0 + 60.0));
  }
  return cs;
}

std::vector<Message> burst_gap_messages() {
  std::vector<Message> msgs;
  for (std::uint32_t i = 0; i < 12; ++i)
    msgs.push_back(msg(i, static_cast<NodeId>(i % 5),
                       static_cast<NodeId>((i + 2) % 5), i * 80.0));
  return msgs;
}

void expect_fast_matches_full(const Fixture& f,
                              const std::vector<Message>& msgs,
                              const TrafficConfig& traffic = {}) {
  for (auto& alg : make_extended_algorithms()) {
    auto full = f.request(*alg, msgs);
    full.traffic = traffic;
    full.contact_scan = ContactScan::kFull;
    auto fast = f.request(*alg, msgs);
    fast.traffic = traffic;
    fast.contact_scan = ContactScan::kHolderIncident;
    expect_results_identical(simulate(full), simulate(fast), alg->name());
  }
}

TEST(SimulatorHolderIncident, GapTraceMatchesFullOracleForAllAlgorithms) {
  const Fixture f(burst_gap_contacts(), 7, 1100.0);
  ASSERT_LT(f.graph.num_active_steps(), f.graph.num_steps());
  expect_fast_matches_full(f, burst_gap_messages());
}

TEST(SimulatorHolderIncident, MidGapActivationMatchesFullOracle) {
  // Messages created inside silent gaps and after the last contact: the
  // fast path's activation scheduling must agree with the oracle's.
  const Fixture f(
      {
          Contact::make(0, 1, 5.0, 12.0),
          Contact::make(1, 2, 95.0, 105.0),
          Contact::make(0, 2, 98.0, 102.0),
      },
      4, 300.0);
  expect_fast_matches_full(f, {
                                  msg(0, 0, 2, 30.0),   // mid-gap creation.
                                  msg(1, 1, 0, 45.0),   // mid-gap creation.
                                  msg(2, 2, 3, 50.0),   // undeliverable.
                                  msg(3, 0, 1, 0.0),    // pre-gap creation.
                                  msg(4, 0, 1, 250.0),  // after last contact.
                              });
}

TEST(SimulatorHolderIncident, ConstrainedTrafficMatchesFullOracle) {
  // Finite contact budget, tight buffers, and TTLs: expiry, eviction, and
  // budget-blocking must fire identically under both scan modes.
  const Fixture f(burst_gap_contacts(), 7, 1100.0);
  auto msgs = burst_gap_messages();
  for (auto& m : msgs) {
    m.size_bytes = 2;
    m.ttl = 320.0;
  }
  for (const auto policy :
       {EvictionPolicy::kDropOldest, EvictionPolicy::kRandom}) {
    TrafficConfig traffic;
    traffic.contact_budget_bytes = 4;
    traffic.buffer_capacity_bytes = 6;
    traffic.eviction = policy;
    expect_fast_matches_full(f, msgs, traffic);
  }
}

// --- Shared observation snapshots vs per-run online tables. ---
// An algorithm that publishes a shared_snapshot_key() must, once adopted,
// reproduce its per-run (observe_contact-driven) results bit for bit —
// the snapshot is the same information precomputed from the trace.

void expect_adopted_matches_per_run(const std::string& name, const Fixture& f,
                                    const std::vector<Message>& msgs) {
  const auto oracle = make_algorithm(name);
  const auto adopted = make_algorithm(name);
  ASSERT_FALSE(adopted->shared_snapshot_key().empty()) << name;
  const auto snapshot = adopted->build_shared_snapshot(f.graph, f.trace);
  ASSERT_TRUE(snapshot != nullptr) << name;
  EXPECT_GT(snapshot->bytes(), 0u) << name;
  adopted->adopt_shared_snapshot(snapshot);
  // Adoption flips the observation contract: the simulator no longer
  // feeds contacts (and the run qualifies for the holder-incident scan).
  EXPECT_TRUE(oracle->observes_contacts()) << name;
  EXPECT_FALSE(adopted->observes_contacts()) << name;

  auto full = f.request(*oracle, msgs);
  full.contact_scan = ContactScan::kFull;
  auto fast = f.request(*adopted, msgs);
  expect_results_identical(simulate(full), simulate(fast), name);
}

TEST(SharedSnapshots, AdoptedAlgorithmsMatchPerRunOracle) {
  const Fixture f(burst_gap_contacts(), 7, 1100.0);
  for (const char* name : {"FRESH", "Greedy", "Greedy Online", "PRoPHET"})
    expect_adopted_matches_per_run(name, f, burst_gap_messages());
}

TEST(SharedSnapshots, ContactHistoryKeyIsSharedAcrossAdopters) {
  // FRESH, Greedy, and Greedy Online all answer from the contact-history
  // index: one build serves all three (the engine keys the store on it).
  EXPECT_EQ(make_algorithm("FRESH")->shared_snapshot_key(),
            ContactHistoryIndex::kKey);
  EXPECT_EQ(make_algorithm("Greedy")->shared_snapshot_key(),
            ContactHistoryIndex::kKey);
  EXPECT_EQ(make_algorithm("Greedy Online")->shared_snapshot_key(),
            ContactHistoryIndex::kKey);
  // PRoPHET's key carries its parameters: differently-tuned instances
  // never share predictabilities.
  EXPECT_NE(ProphetForwarding(ProphetParams{}).shared_snapshot_key(),
            ProphetForwarding(ProphetParams{.p_init = 0.5})
                .shared_snapshot_key());
  // History-free algorithms publish no key (nothing to share).
  EXPECT_TRUE(make_algorithm("Epidemic")->shared_snapshot_key().empty());
  EXPECT_TRUE(make_algorithm("Direct")->shared_snapshot_key().empty());
}

TEST(SharedSnapshots, AdoptedRunsAreReusableAcrossSimulations) {
  // One adopted instance serving several simulate() calls (the sweep
  // reuses algorithm instances across runs of a cell): reset() must not
  // disturb the snapshot, and results must stay identical.
  const Fixture f(burst_gap_contacts(), 7, 1100.0);
  const auto adopted = make_algorithm("FRESH");
  adopted->adopt_shared_snapshot(
      adopted->build_shared_snapshot(f.graph, f.trace));
  const auto msgs = burst_gap_messages();
  const auto first = f.run(*adopted, msgs);
  const auto second = f.run(*adopted, msgs);
  expect_results_identical(first, second, "FRESH adopted reuse");
}

TEST(Simulator, WorkspaceReuseIsBitIdentical) {
  // One workspace serving many runs (different algorithms, message
  // counts, and an interleaved larger population) must produce exactly
  // what fresh per-run workspaces produce.
  const Fixture small(
      {
          Contact::make(0, 1, 5.0, 12.0),
          Contact::make(1, 2, 95.0, 105.0),
          Contact::make(0, 2, 150.0, 160.0),
      },
      4, 300.0);
  std::vector<Contact> big_cs;
  for (int i = 0; i < 40; ++i)
    big_cs.push_back(Contact::make(static_cast<NodeId>(i % 9),
                                   static_cast<NodeId>(i % 9 + 1), i * 12.0,
                                   i * 12.0 + 6.0));
  const Fixture big(std::move(big_cs), 10, 600.0);

  std::vector<Message> small_msgs = {msg(0, 0, 2, 0.0), msg(1, 1, 0, 30.0)};
  std::vector<Message> big_msgs;
  for (std::uint32_t i = 0; i < 8; ++i)
    big_msgs.push_back(msg(i, static_cast<NodeId>(i),
                           static_cast<NodeId>((i + 4) % 10), i * 40.0));

  SimulatorWorkspace shared;
  for (auto& alg : make_extended_algorithms()) {
    for (const auto* fx : {&small, &big, &small}) {
      const auto& msgs = fx == &big ? big_msgs : small_msgs;
      const auto request = fx->request(*alg, msgs);
      const auto fresh = simulate(request);
      const auto reused = simulate(request, shared);
      ASSERT_EQ(fresh.outcomes.size(), reused.outcomes.size()) << alg->name();
      for (std::size_t i = 0; i < fresh.outcomes.size(); ++i) {
        EXPECT_EQ(fresh.outcomes[i].delivered, reused.outcomes[i].delivered)
            << alg->name();
        EXPECT_EQ(fresh.outcomes[i].delay, reused.outcomes[i].delay)
            << alg->name();
        EXPECT_EQ(fresh.outcomes[i].hops, reused.outcomes[i].hops)
            << alg->name();
      }
      EXPECT_EQ(fresh.transmissions, reused.transmissions) << alg->name();
    }
  }
}

TEST(Simulator, FloodKernelsMatchBitForBit) {
  // The word-parallel flood kernel must reproduce the scalar oracle
  // kernel bit-for-bit: outcomes, delays, hop counts, and transmission
  // totals. Non-flooding algorithms never enter the flood path, so for
  // them this doubles as a no-op knob check.
  std::vector<Contact> cs;
  for (int i = 0; i < 30; ++i)
    cs.push_back(Contact::make(static_cast<NodeId>(i % 5),
                               static_cast<NodeId>(i % 5 + 1), i * 20.0,
                               i * 20.0 + 10.0));
  // A second cluster so steps carry several components at once.
  for (int i = 0; i < 12; ++i)
    cs.push_back(Contact::make(static_cast<NodeId>(7 + i % 3),
                               static_cast<NodeId>(8 + i % 3), i * 45.0,
                               i * 45.0 + 20.0));
  const Fixture f(std::move(cs), 11, 700.0);
  std::vector<Message> msgs;
  for (std::uint32_t i = 0; i < 14; ++i)
    msgs.push_back(msg(i, static_cast<NodeId>(i % 6),
                       static_cast<NodeId>((i + 3) % 6), i * 30.0));
  for (auto& alg : make_extended_algorithms()) {
    auto request = f.request(*alg, msgs);
    request.seed = 11;
    request.flood_kernel = FloodKernel::kWordParallel;
    const auto word = simulate(request);
    request.flood_kernel = FloodKernel::kScalar;
    const auto scalar = simulate(request);
    ASSERT_EQ(word.outcomes.size(), scalar.outcomes.size()) << alg->name();
    for (std::size_t i = 0; i < word.outcomes.size(); ++i) {
      EXPECT_EQ(word.outcomes[i].delivered, scalar.outcomes[i].delivered)
          << alg->name();
      EXPECT_EQ(word.outcomes[i].delay, scalar.outcomes[i].delay)
          << alg->name();
      EXPECT_EQ(word.outcomes[i].hops, scalar.outcomes[i].hops)
          << alg->name();
    }
    EXPECT_EQ(word.transmissions, scalar.transmissions) << alg->name();
  }
}

TEST(Simulator, NullRequestFieldsThrow) {
  const Fixture f({Contact::make(0, 1, 0.0, 5.0)}, 2, 60.0);
  EpidemicForwarding epidemic;
  const std::vector<Message> msgs = {msg(0, 0, 1, 0.0)};
  EXPECT_THROW((void)simulate(SimulationRequest{}), std::invalid_argument);
  auto no_alg = f.request(epidemic, msgs);
  no_alg.algorithm = nullptr;
  EXPECT_THROW((void)simulate(no_alg), std::invalid_argument);
  auto no_msgs = f.request(epidemic, msgs);
  no_msgs.messages = nullptr;
  EXPECT_THROW((void)simulate(no_msgs), std::invalid_argument);
}

TEST(SimulationResultTest, Aggregates) {
  SimulationResult r;
  r.outcomes = {{true, 10.0, 1}, {false, 0.0, 0}, {true, 30.0, 2}};
  EXPECT_EQ(r.delivered_count(), 2u);
  EXPECT_NEAR(r.success_rate(), 2.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(r.average_delay(), 20.0);
  EXPECT_EQ(r.delivered_delays().size(), 2u);
  r.expirations = 1;
  r.drops = 2;
  EXPECT_NEAR(r.expiry_rate(), 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(r.drop_rate(), 2.0 / 3.0, 1e-12);
}

}  // namespace
}  // namespace psn::forward
