// Tests for the engine's §5 model sweep: the SplitMix64 substream
// lattice, the scale-tier registry, bit-identical cells at 1 vs 8
// threads, the serial-replica and single-stream oracles, workspace-reuse
// equivalence, and the NaN-safe quadrant summary.

#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <vector>

#include "psn/core/quadrant.hpp"
#include "psn/engine/model_sweep.hpp"
#include "psn/model/heterogeneous_mc.hpp"
#include "psn/model/jump_simulator.hpp"
#include "psn/model/workspace.hpp"
#include "psn/stats/summary.hpp"
#include "psn/util/rng.hpp"

namespace psn::engine {
namespace {

// EXPECT_DOUBLE_EQ that treats two NaNs as equal (the MC sentinel).
void expect_same_double(double lhs, double rhs) {
  if (std::isnan(lhs))
    EXPECT_TRUE(std::isnan(rhs));
  else
    EXPECT_DOUBLE_EQ(lhs, rhs);
}

void expect_cells_identical(const ModelCell& lhs, const ModelCell& rhs) {
  EXPECT_EQ(lhs.scenario, rhs.scenario);
  EXPECT_EQ(lhs.population, rhs.population);
  EXPECT_EQ(lhs.jump_replicas, rhs.jump_replicas);
  EXPECT_EQ(lhs.jump_events, rhs.jump_events);
  ASSERT_EQ(lhs.trajectory.size(), rhs.trajectory.size());
  for (std::size_t i = 0; i < lhs.trajectory.size(); ++i) {
    const EnsemblePoint& a = lhs.trajectory[i];
    const EnsemblePoint& b = rhs.trajectory[i];
    EXPECT_DOUBLE_EQ(a.t, b.t);
    EXPECT_DOUBLE_EQ(a.mean_paths, b.mean_paths);
    EXPECT_DOUBLE_EQ(a.var_mean_paths, b.var_mean_paths);
    EXPECT_DOUBLE_EQ(a.mean_variance_paths, b.mean_variance_paths);
    ASSERT_EQ(a.mean_low_density.size(), b.mean_low_density.size());
    for (std::size_t k = 0; k < a.mean_low_density.size(); ++k)
      EXPECT_DOUBLE_EQ(a.mean_low_density[k], b.mean_low_density[k]);
  }
  ASSERT_EQ(lhs.messages.size(), rhs.messages.size());
  for (std::size_t m = 0; m < lhs.messages.size(); ++m) {
    EXPECT_EQ(lhs.messages[m].type, rhs.messages[m].type);
    EXPECT_EQ(lhs.messages[m].delivered, rhs.messages[m].delivered);
    EXPECT_EQ(lhs.messages[m].exploded, rhs.messages[m].exploded);
    expect_same_double(lhs.messages[m].t1, rhs.messages[m].t1);
    expect_same_double(lhs.messages[m].te, rhs.messages[m].te);
  }
  for (std::size_t q = 0; q < 4; ++q) {
    EXPECT_EQ(lhs.quadrants.messages[q], rhs.quadrants.messages[q]);
    EXPECT_EQ(lhs.quadrants.delivered[q], rhs.quadrants.delivered[q]);
    EXPECT_EQ(lhs.quadrants.exploded[q], rhs.quadrants.exploded[q]);
    EXPECT_EQ(lhs.quadrants.t1[q].count(), rhs.quadrants.t1[q].count());
    if (lhs.quadrants.t1[q].count() > 0) {
      EXPECT_DOUBLE_EQ(lhs.quadrants.t1[q].mean(),
                       rhs.quadrants.t1[q].mean());
    }
    EXPECT_EQ(lhs.quadrants.te[q].count(), rhs.quadrants.te[q].count());
    if (lhs.quadrants.te[q].count() > 0) {
      EXPECT_DOUBLE_EQ(lhs.quadrants.te[q].mean(),
                       rhs.quadrants.te[q].mean());
    }
  }
}

// A small but non-trivial plan exercising both halves of a cell.
ModelSweepPlan small_plan() {
  ModelSweepPlan plan;
  ModelScenario scenario;
  scenario.name = "sweep-test";
  scenario.jump.population = 500;
  scenario.jump.lambda = 0.05;
  scenario.jump.t_end = 80.0;
  scenario.jump.samples = 9;
  scenario.mc.population = 80;
  scenario.mc.max_rate = 0.15;
  scenario.mc.t_end = 1500.0;
  scenario.mc.k = 100;
  scenario.mc.messages = 50;
  plan.scenarios = {scenario};
  plan.config.jump_replicas = 6;
  plan.config.master_seed = 21;
  return plan;
}

TEST(ModelSubstream, MatchesTheSplitMix64Sequence) {
  // model_substream_seed(seed, slot) is the output of draw number `slot`
  // of the SplitMix64 sequence from `seed` — O(1) slot addressing must
  // agree with sequential stepping.
  const std::uint64_t seed = 0x243f6a8885a308d3ULL;
  std::uint64_t state = seed;
  for (std::uint64_t slot = 0; slot < 32; ++slot) {
    const std::uint64_t sequential = util::splitmix64(state);
    EXPECT_EQ(model_substream_seed(seed, slot), sequential) << slot;
  }
}

TEST(ModelSubstream, LatticeSeedsAreDistinct) {
  // The role salts must keep the jump / population / pair / message
  // lattices apart within a scenario and across scenarios.
  std::vector<std::uint64_t> seeds;
  for (std::size_t s = 0; s < 3; ++s) {
    seeds.push_back(model_mc_population_seed(7, s));
    seeds.push_back(model_mc_pair_seed(7, s));
    for (std::size_t i = 0; i < 4; ++i) {
      seeds.push_back(model_jump_replica_seed(7, s, i));
      seeds.push_back(model_mc_message_seed(7, s, i));
    }
  }
  for (std::size_t i = 0; i < seeds.size(); ++i)
    for (std::size_t j = i + 1; j < seeds.size(); ++j)
      EXPECT_NE(seeds[i], seeds[j]) << i << " vs " << j;
}

TEST(ModelScenarioRegistry, TiersSpanTheScaleLadder) {
  const auto names = model_scenario_names();
  ASSERT_EQ(names.size(), 4u);
  std::size_t previous = 0;
  for (const auto& name : names) {
    const ModelScenario scenario = make_model_scenario(name);
    EXPECT_EQ(scenario.name, name);
    EXPECT_GT(scenario.jump.population, previous);
    EXPECT_EQ(scenario.jump.population, scenario.mc.population);
    EXPECT_GT(scenario.mc.messages, 0u);
    previous = scenario.jump.population;
  }
  EXPECT_EQ(make_model_scenario("model_100").jump.population, 100u);
  EXPECT_EQ(make_model_scenario("model_100k").jump.population, 100000u);
}

TEST(ModelScenarioRegistry, UnknownNameThrowsListingNames) {
  try {
    (void)make_model_scenario("model_9000");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("model_9000"), std::string::npos);
    for (const auto& name : model_scenario_names())
      EXPECT_NE(what.find(name), std::string::npos) << name;
  }
}

TEST(ModelSweep, RejectsBadPlans) {
  ModelSweepPlan plan;
  EXPECT_THROW((void)run_model_sweep(plan), std::invalid_argument);
  plan = small_plan();
  plan.scenarios[0].jump.population = 1;
  EXPECT_THROW((void)run_model_sweep(plan), std::invalid_argument);
  plan = small_plan();
  plan.scenarios[0].mc.population = 1;
  EXPECT_THROW((void)run_model_sweep(plan), std::invalid_argument);
  // A disabled half is not validated: population 1 is fine when unused.
  plan.scenarios[0].mc.messages = 0;
  EXPECT_NO_THROW((void)run_model_sweep(plan));
}

// The headline guarantee: bit-identical cells at 1 and 8 threads.
TEST(ModelSweep, BitIdenticalAcrossThreadCounts) {
  const ModelSweepPlan plan = small_plan();
  ModelSweepOptions serial;
  serial.threads = 1;
  ModelSweepOptions wide;
  wide.threads = 8;
  const auto lhs = run_model_sweep(plan, serial);
  const auto rhs = run_model_sweep(plan, wide);
  EXPECT_EQ(lhs.threads, 1u);
  EXPECT_EQ(rhs.threads, 8u);
  EXPECT_EQ(lhs.total_replicas, 6u);
  EXPECT_EQ(lhs.total_messages, 50u);
  ASSERT_EQ(lhs.cells.size(), 1u);
  ASSERT_EQ(rhs.cells.size(), 1u);
  expect_cells_identical(lhs.cells[0], rhs.cells[0]);

  // Something non-trivial actually happened on both halves.
  std::size_t delivered = 0;
  for (const auto& message : lhs.cells[0].messages)
    delivered += message.delivered;
  EXPECT_GT(delivered, 0u);
  EXPECT_GT(lhs.cells[0].jump_events, 0u);
  EXPECT_GT(lhs.cells[0].trajectory.back().mean_paths, 0.0);
}

// The serial-replica oracle: re-running every jump slot serially with
// its exposed substream seed and Welford-accumulating in slot order must
// reproduce the engine's ensemble bit for bit.
TEST(ModelSweep, JumpEnsembleMatchesSerialReplicaRuns) {
  const ModelSweepPlan plan = small_plan();
  const auto sweep = run_model_sweep(plan);
  const auto& trajectory = sweep.cells[0].trajectory;

  std::vector<std::vector<model::JumpSample>> runs;
  for (std::size_t r = 0; r < plan.config.jump_replicas; ++r) {
    model::JumpSimConfig config = plan.scenarios[0].jump;
    config.seed = model_jump_replica_seed(plan.config.master_seed, 0, r);
    runs.push_back(model::run_jump_simulation(config));
  }
  ASSERT_EQ(trajectory.size(), runs[0].size());
  for (std::size_t i = 0; i < trajectory.size(); ++i) {
    stats::Accumulator mean_acc;
    double variance_sum = 0.0;
    for (const auto& run : runs) {
      mean_acc.add(run[i].mean_paths);
      variance_sum += run[i].variance_paths;
    }
    EXPECT_DOUBLE_EQ(trajectory[i].t, runs[0][i].t);
    EXPECT_DOUBLE_EQ(trajectory[i].mean_paths, mean_acc.mean());
    EXPECT_DOUBLE_EQ(trajectory[i].var_mean_paths, mean_acc.variance());
    EXPECT_DOUBLE_EQ(
        trajectory[i].mean_variance_paths,
        variance_sum / static_cast<double>(plan.config.jump_replicas));
  }
}

// The exact MC oracle: re-running every message slot serially with the
// exposed substream lattice (population, pair sample, per-message
// streams) must reproduce the engine's per-message results bit for bit —
// the MC analogue of JumpEnsembleMatchesSerialReplicaRuns.
TEST(ModelSweep, McMessagesMatchSerialSlotRecomposition) {
  const ModelSweepPlan plan = small_plan();
  const auto sweep = run_model_sweep(plan);
  const auto& messages = sweep.cells[0].messages;
  ASSERT_EQ(messages.size(), plan.scenarios[0].mc.messages);

  const model::HeterogeneousMcConfig& config = plan.scenarios[0].mc;
  const std::uint64_t master = plan.config.master_seed;
  util::Rng population_rng(model_mc_population_seed(master, 0));
  const auto population =
      model::make_heterogeneous_population(config, population_rng);
  util::Rng pair_rng(model_mc_pair_seed(master, 0));
  std::vector<double> counts;
  for (std::size_t m = 0; m < config.messages; ++m) {
    const auto src =
        static_cast<std::size_t>(pair_rng.uniform_index(config.population));
    auto dst = static_cast<std::size_t>(
        pair_rng.uniform_index(config.population - 1));
    if (dst >= src) ++dst;
    util::Rng message_rng(model_mc_message_seed(master, 0, m));
    const auto expected = model::simulate_mc_message(
        population, config, src, dst, message_rng, counts);
    EXPECT_EQ(messages[m].type, expected.type) << m;
    EXPECT_EQ(messages[m].delivered, expected.delivered) << m;
    EXPECT_EQ(messages[m].exploded, expected.exploded) << m;
    expect_same_double(messages[m].t1, expected.t1);
    expect_same_double(messages[m].te, expected.te);
  }
}

// The single-stream MC oracle: the engine's substreamed fan-out and the
// retained serial run_heterogeneous_mc are different samplers of the
// same experiment, so their per-quadrant statistics must agree within
// sampling tolerance (and the engine side must reproduce the paper's
// quadrant ordering). Seeding the serial run with the engine's
// population substream makes both draw the identical rate population —
// run_heterogeneous_mc's first config.population draws are exactly
// make_heterogeneous_population's — which removes the dominant
// between-population variance term and leaves message-sampling noise.
TEST(ModelSweep, McStatisticsMatchSerialSingleStreamOracle) {
  constexpr std::uint64_t kMasterSeed = 31;
  model::HeterogeneousMcConfig config;
  config.population = 100;
  config.max_rate = 0.12;
  config.t_end = 7200.0;
  config.k = 500;
  config.messages = 400;
  config.seed = model_mc_population_seed(kMasterSeed, 0);
  const auto serial =
      core::summarize_mc_by_quadrant(model::run_heterogeneous_mc(config));

  ModelSweepPlan plan;
  ModelScenario scenario;
  scenario.name = "mc-oracle";
  scenario.mc = config;
  plan.scenarios = {scenario};
  plan.config.jump_replicas = 0;
  plan.config.master_seed = kMasterSeed;
  const auto sweep = run_model_sweep(plan);
  const core::McQuadrantSummary& engine = sweep.cells[0].quadrants;

  for (std::size_t q = 0; q < 4; ++q) {
    ASSERT_GT(serial.t1[q].count(), 20u) << q;
    ASSERT_GT(engine.t1[q].count(), 20u) << q;
    // Independent streams: means agree within a generous sampling band.
    EXPECT_NEAR(engine.t1[q].mean(), serial.t1[q].mean(),
                0.35 * serial.t1[q].mean() + 10.0)
        << q;
    EXPECT_NEAR(engine.te[q].mean(), serial.te[q].mean(),
                0.35 * serial.te[q].mean() + 10.0)
        << q;
  }
  // §5.2 hypotheses on the engine side: T1 by source class, TE by
  // destination class.
  using core::Quadrant;
  const auto t1_mean = [&](Quadrant q) {
    return engine.t1[static_cast<std::size_t>(q)].mean();
  };
  const auto te_mean = [&](Quadrant q) {
    return engine.te[static_cast<std::size_t>(q)].mean();
  };
  EXPECT_LT(t1_mean(Quadrant::in_in), t1_mean(Quadrant::out_in));
  EXPECT_LT(t1_mean(Quadrant::in_out), t1_mean(Quadrant::out_out));
  EXPECT_LT(te_mean(Quadrant::in_in), te_mean(Quadrant::in_out));
  EXPECT_LT(te_mean(Quadrant::out_in), te_mean(Quadrant::out_out));
}

// Workspaces must never influence results: a workspace dragged across
// runs of different populations reproduces fresh-workspace output bit
// for bit, for both kernels.
TEST(ModelSweep, WorkspaceReuseNeverChangesResults) {
  model::ModelWorkspace dirty;

  model::JumpSimConfig big;
  big.population = 400;
  big.t_end = 60.0;
  big.samples = 7;
  big.seed = 3;
  (void)model::run_jump_simulation(big, dirty);  // dirty the state at 400.

  model::JumpSimConfig small;
  small.population = 120;
  small.t_end = 40.0;
  small.samples = 5;
  small.seed = 9;
  const auto fresh = model::run_jump_simulation(small);
  const auto reused = model::run_jump_simulation(small, dirty);
  ASSERT_EQ(fresh.size(), reused.size());
  for (std::size_t i = 0; i < fresh.size(); ++i) {
    EXPECT_DOUBLE_EQ(fresh[i].t, reused[i].t);
    EXPECT_DOUBLE_EQ(fresh[i].mean_paths, reused[i].mean_paths);
    EXPECT_DOUBLE_EQ(fresh[i].variance_paths, reused[i].variance_paths);
    for (std::size_t k = 0; k < fresh[i].low_density.size(); ++k)
      EXPECT_DOUBLE_EQ(fresh[i].low_density[k], reused[i].low_density[k]);
  }

  model::HeterogeneousMcConfig config;
  config.population = 60;
  config.max_rate = 0.15;
  config.t_end = 800.0;
  config.k = 40;
  util::Rng population_rng(5);
  const auto population =
      model::make_heterogeneous_population(config, population_rng);
  std::vector<double> fresh_counts;
  std::vector<double> dirty_counts(4096, 123.0);  // oversized and poisoned.
  util::Rng rng_a(77);
  util::Rng rng_b(77);
  const auto a = model::simulate_mc_message(population, config, 3, 41, rng_a,
                                            fresh_counts);
  const auto b = model::simulate_mc_message(population, config, 3, 41, rng_b,
                                            dirty_counts);
  EXPECT_EQ(a.type, b.type);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.exploded, b.exploded);
  expect_same_double(a.t1, b.t1);
  expect_same_double(a.te, b.te);
}

// keep_messages only controls retention: the quadrant summary is
// identical with the raw results dropped.
TEST(ModelSweep, KeepMessagesOffDropsOnlyTheRawResults) {
  const ModelSweepPlan plan = small_plan();
  ModelSweepOptions keep;
  keep.keep_messages = true;
  ModelSweepOptions drop;
  drop.keep_messages = false;
  const auto kept = run_model_sweep(plan, keep);
  const auto dropped = run_model_sweep(plan, drop);
  EXPECT_EQ(kept.cells[0].messages.size(), 50u);
  EXPECT_TRUE(dropped.cells[0].messages.empty());
  for (std::size_t q = 0; q < 4; ++q) {
    EXPECT_EQ(kept.cells[0].quadrants.messages[q],
              dropped.cells[0].quadrants.messages[q]);
    if (kept.cells[0].quadrants.t1[q].count() > 0) {
      EXPECT_DOUBLE_EQ(kept.cells[0].quadrants.t1[q].mean(),
                       dropped.cells[0].quadrants.t1[q].mean());
    }
  }
}

// Either half of a scenario can be disabled independently.
TEST(ModelSweep, HalvesAreIndependentlyOptional) {
  ModelSweepPlan plan = small_plan();
  plan.config.jump_replicas = 0;
  const auto mc_only = run_model_sweep(plan);
  // An MC-only cell reports the MC population, not the unused jump one.
  EXPECT_EQ(mc_only.cells[0].population, 80u);
  EXPECT_TRUE(mc_only.cells[0].trajectory.empty());
  EXPECT_EQ(mc_only.cells[0].jump_events, 0u);
  EXPECT_EQ(mc_only.total_replicas, 0u);
  EXPECT_EQ(mc_only.cells[0].messages.size(), 50u);

  plan = small_plan();
  plan.scenarios[0].mc.messages = 0;
  const auto jump_only = run_model_sweep(plan);
  EXPECT_TRUE(jump_only.cells[0].messages.empty());
  EXPECT_EQ(jump_only.total_messages, 0u);
  EXPECT_EQ(jump_only.cells[0].trajectory.size(), 9u);
  for (std::size_t q = 0; q < 4; ++q)
    EXPECT_EQ(jump_only.cells[0].quadrants.messages[q], 0u);
}

// Multi-scenario sweeps aggregate in plan order and stay deterministic
// at any thread count. (A scenario's substreams are keyed by its plan
// index — like SeedMode::kPerScenario — so reordering scenarios is, by
// design, a different experiment.)
TEST(ModelSweep, MultiScenarioDeterministicAcrossThreadCounts) {
  ModelSweepPlan plan = small_plan();
  ModelScenario second = plan.scenarios[0];
  second.name = "second";
  second.mc.messages = 20;
  second.jump.population = 300;
  plan.scenarios.push_back(second);

  ModelSweepOptions serial;
  serial.threads = 1;
  ModelSweepOptions wide;
  wide.threads = 8;
  const auto lhs = run_model_sweep(plan, serial);
  const auto rhs = run_model_sweep(plan, wide);
  ASSERT_EQ(lhs.cells.size(), 2u);
  EXPECT_EQ(lhs.cells[0].scenario, "sweep-test");
  EXPECT_EQ(lhs.cells[1].scenario, "second");
  for (std::size_t c = 0; c < lhs.cells.size(); ++c)
    expect_cells_identical(lhs.cells[c], rhs.cells[c]);
}

// The NaN-safe quadrant summary: undelivered messages count toward
// `messages` but never touch the t1/te accumulators.
TEST(McQuadrantSummary, UndeliveredMessagesNeverTouchTheAccumulators) {
  std::vector<model::McMessageResult> results(3);
  results[0].type = model::PairType::in_in;
  results[0].delivered = true;
  results[0].t1 = 12.0;
  results[1].type = model::PairType::in_in;  // undelivered: NaN sentinels.
  results[2].type = model::PairType::out_out;
  results[2].delivered = true;
  results[2].exploded = true;
  results[2].t1 = 30.0;
  results[2].te = 5.0;

  const auto summary = core::summarize_mc_by_quadrant(results);
  EXPECT_EQ(summary.messages[0], 2u);
  EXPECT_EQ(summary.delivered[0], 1u);
  EXPECT_EQ(summary.exploded[0], 0u);
  EXPECT_EQ(summary.t1[0].count(), 1u);
  EXPECT_DOUBLE_EQ(summary.t1[0].mean(), 12.0);  // 0-sentinels would halve it.
  EXPECT_EQ(summary.te[0].count(), 0u);
  EXPECT_EQ(summary.messages[3], 1u);
  EXPECT_EQ(summary.exploded[3], 1u);
  EXPECT_DOUBLE_EQ(summary.te[3].mean(), 5.0);
  EXPECT_EQ(summary.messages[1] + summary.messages[2], 0u);
}

}  // namespace
}  // namespace psn::engine
