// Tests for psn::graph: space-time discretization, per-step components,
// temporal reachability. Includes the paper's Fig. 2 example.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <vector>

#include "psn/engine/thread_pool.hpp"
#include "psn/graph/components.hpp"
#include "psn/graph/reachability.hpp"
#include "psn/graph/space_time_graph.hpp"
#include "psn/util/parallel.hpp"
#include "psn/util/rng.hpp"

namespace psn::graph {
namespace {

using trace::Contact;
using trace::ContactTrace;

ContactTrace make_trace(std::vector<Contact> cs, NodeId n, Seconds t_max) {
  return ContactTrace(std::move(cs), n, t_max);
}

TEST(SpaceTimeGraph, Fig2Example) {
  // Paper Fig. 2: nodes 1,2 in contact during the first step; all three
  // pairs during the second. (0-based here.)
  const auto trace = make_trace(
      {
          Contact::make(0, 1, 0.0, 1.0),
          Contact::make(0, 1, 1.0, 2.0),
          Contact::make(0, 2, 1.0, 2.0),
          Contact::make(1, 2, 1.0, 2.0),
      },
      3, 2.0);
  const SpaceTimeGraph g(trace, 1.0);
  ASSERT_EQ(g.num_steps(), 2u);
  EXPECT_EQ(g.edges(0).size(), 1u);
  EXPECT_EQ(g.edges(1).size(), 3u);
  EXPECT_TRUE(g.in_contact(0, 0, 1));
  EXPECT_FALSE(g.in_contact(0, 0, 2));
  EXPECT_TRUE(g.in_contact(1, 0, 2));
  EXPECT_TRUE(g.in_contact(1, 1, 2));
}

TEST(SpaceTimeGraph, ContactSpanningStepsAppearsInEach) {
  const auto trace =
      make_trace({Contact::make(0, 1, 5.0, 35.0)}, 2, 60.0);
  const SpaceTimeGraph g(trace, 10.0);
  ASSERT_EQ(g.num_steps(), 6u);
  EXPECT_TRUE(g.in_contact(0, 0, 1));
  EXPECT_TRUE(g.in_contact(1, 0, 1));
  EXPECT_TRUE(g.in_contact(2, 0, 1));
  EXPECT_TRUE(g.in_contact(3, 0, 1));  // [30, 40) contains 30..35.
  EXPECT_FALSE(g.in_contact(4, 0, 1));
}

TEST(SpaceTimeGraph, ContactEndingOnBoundaryExcludedFromNextStep) {
  const auto trace = make_trace({Contact::make(0, 1, 0.0, 10.0)}, 2, 30.0);
  const SpaceTimeGraph g(trace, 10.0);
  EXPECT_TRUE(g.in_contact(0, 0, 1));
  EXPECT_FALSE(g.in_contact(1, 0, 1));
}

TEST(SpaceTimeGraph, ZeroLengthContactStillPresent) {
  const auto trace = make_trace({Contact::make(0, 1, 15.0, 15.0)}, 2, 30.0);
  const SpaceTimeGraph g(trace, 10.0);
  EXPECT_TRUE(g.in_contact(1, 0, 1));
  EXPECT_FALSE(g.in_contact(0, 0, 1));
}

TEST(SpaceTimeGraph, DuplicateContactsDeduplicated) {
  const auto trace = make_trace(
      {
          Contact::make(0, 1, 0.0, 5.0),
          Contact::make(0, 1, 6.0, 9.0),  // same step 0
      },
      2, 10.0);
  const SpaceTimeGraph g(trace, 10.0);
  EXPECT_EQ(g.edges(0).size(), 1u);
}

TEST(SpaceTimeGraph, NeighborsSortedAndSymmetric) {
  const auto trace = make_trace(
      {
          Contact::make(3, 1, 0.0, 5.0),
          Contact::make(3, 2, 0.0, 5.0),
          Contact::make(3, 0, 0.0, 5.0),
      },
      4, 10.0);
  const SpaceTimeGraph g(trace, 10.0);
  const auto nb = g.neighbors(0, 3);
  ASSERT_EQ(nb.size(), 3u);
  EXPECT_EQ(nb[0], 0u);
  EXPECT_EQ(nb[1], 1u);
  EXPECT_EQ(nb[2], 2u);
  EXPECT_EQ(g.neighbors(0, 1).size(), 1u);
  EXPECT_EQ(g.neighbors(0, 1)[0], 3u);
}

TEST(SpaceTimeGraph, StepOfClampsAndFloors) {
  const auto trace = make_trace({Contact::make(0, 1, 0.0, 1.0)}, 2, 100.0);
  const SpaceTimeGraph g(trace, 10.0);
  EXPECT_EQ(g.step_of(-5.0), 0u);
  EXPECT_EQ(g.step_of(0.0), 0u);
  EXPECT_EQ(g.step_of(9.99), 0u);
  EXPECT_EQ(g.step_of(10.0), 1u);
  EXPECT_EQ(g.step_of(1e9), g.num_steps() - 1);
}

TEST(SpaceTimeGraph, StepEndTimes) {
  const auto trace = make_trace({Contact::make(0, 1, 0.0, 1.0)}, 2, 100.0);
  const SpaceTimeGraph g(trace, 10.0);
  EXPECT_DOUBLE_EQ(g.step_end(0), 10.0);
  EXPECT_DOUBLE_EQ(g.step_end(4), 50.0);
}

TEST(SpaceTimeGraph, SupportsPopulationsBeyond128Nodes) {
  // The historical Bitset128 ceiling rejected >128-node traces at
  // construction; with dynamic NodeSets the graph must just work.
  std::vector<Contact> cs{
      Contact::make(0, 1, 0.0, 1.0),
      Contact::make(150, 199, 2.0, 4.0),
      Contact::make(1, 199, 2.0, 4.0),
  };
  const ContactTrace trace(cs, 200, 10.0);
  const SpaceTimeGraph g(trace, 10.0);
  EXPECT_EQ(g.num_nodes(), 200u);
  EXPECT_TRUE(g.in_contact(0, 150, 199));
  EXPECT_TRUE(g.in_contact(0, 199, 1));
  ASSERT_EQ(g.neighbors(0, 199).size(), 2u);
  EXPECT_EQ(g.neighbors(0, 199)[0], 1u);    // sorted ascending
  EXPECT_EQ(g.neighbors(0, 199)[1], 150u);
}

TEST(SpaceTimeGraph, ArenaEdgesAndAdjacencyAgree) {
  // CSR arena invariant: for every step, edges(s) and neighbors(s, v)
  // describe the same symmetric graph.
  const auto trace = make_trace(
      {
          Contact::make(0, 1, 0.0, 20.0),
          Contact::make(1, 2, 0.0, 5.0),
          Contact::make(0, 1, 3.0, 6.0),  // duplicate pair within step 0
          Contact::make(2, 3, 12.0, 18.0),
      },
      5, 30.0);
  const SpaceTimeGraph g(trace, 10.0);
  for (Step s = 0; s < g.num_steps(); ++s) {
    std::size_t degree_sum = 0;
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      const auto nb = g.neighbors(s, v);
      degree_sum += nb.size();
      EXPECT_TRUE(std::is_sorted(nb.begin(), nb.end()));
      for (const NodeId w : nb) EXPECT_TRUE(g.in_contact(s, w, v));
    }
    EXPECT_EQ(degree_sum, 2 * g.edges(s).size());
    // Per-step edges are deduplicated and sorted by (a, b).
    const auto es = g.edges(s);
    for (std::size_t i = 1; i < es.size(); ++i) {
      EXPECT_TRUE(es[i - 1].a < es[i].a ||
                  (es[i - 1].a == es[i].a && es[i - 1].b < es[i].b));
    }
  }
  EXPECT_EQ(g.edges(0).size(), 2u);  // 0-1 deduplicated, 1-2
}

TEST(SpaceTimeGraph, RejectsNonPositiveDelta) {
  const auto trace = make_trace({Contact::make(0, 1, 0.0, 1.0)}, 2, 10.0);
  EXPECT_THROW(SpaceTimeGraph(trace, 0.0), std::invalid_argument);
}

TEST(SpaceTimeGraph, TotalEdges) {
  const auto trace = make_trace(
      {
          Contact::make(0, 1, 0.0, 20.0),  // steps 0,1
          Contact::make(1, 2, 0.0, 5.0),   // step 0
      },
      3, 20.0);
  const SpaceTimeGraph g(trace, 10.0);
  EXPECT_EQ(g.total_edges(), 3u);
}

TEST(SpaceTimeGraph, IsolatedNodeHasNoNeighbors) {
  const auto trace = make_trace({Contact::make(0, 1, 0.0, 5.0)}, 4, 10.0);
  const SpaceTimeGraph g(trace, 10.0);
  EXPECT_TRUE(g.neighbors(0, 2).empty());
  EXPECT_TRUE(g.neighbors(0, 3).empty());
}

TEST(SpaceTimeGraph, InContactIsSymmetric) {
  const auto trace = make_trace({Contact::make(2, 5, 0.0, 5.0)}, 6, 10.0);
  const SpaceTimeGraph g(trace, 10.0);
  EXPECT_TRUE(g.in_contact(0, 2, 5));
  EXPECT_TRUE(g.in_contact(0, 5, 2));
  EXPECT_FALSE(g.in_contact(0, 2, 4));
  EXPECT_FALSE(g.in_contact(0, 4, 2));
}

TEST(SpaceTimeGraph, EmptyTraceStillHasSteps) {
  const trace::ContactTrace empty({}, 3, 50.0);
  const SpaceTimeGraph g(empty, 10.0);
  EXPECT_EQ(g.num_steps(), 5u);
  EXPECT_EQ(g.total_edges(), 0u);
  EXPECT_TRUE(g.edges(0).empty());
}

/// A deterministic random trace for the build-equivalence and component
/// oracle tests: `k` contacts over `n` nodes, uniform times, durations up
/// to three steps so contacts straddle step boundaries.
ContactTrace random_contacts(NodeId n, std::size_t k, Seconds t_max,
                             std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<Contact> cs;
  cs.reserve(k);
  for (std::size_t i = 0; i < k; ++i) {
    const auto a = static_cast<NodeId>(rng.uniform_index(n));
    auto b = static_cast<NodeId>(rng.uniform_index(n - 1));
    if (b >= a) ++b;
    const Seconds start = rng.uniform(0.0, t_max);
    const Seconds end = std::min(start + rng.uniform(0.0, 30.0), t_max);
    cs.push_back(Contact::make(a, b, start, end));
  }
  return ContactTrace(std::move(cs), n, t_max);
}

TEST(SpaceTimeGraph, ShardedBuildMatchesSerialByteForByte) {
  // The parallel construction path must reproduce the serial arenas
  // exactly — same counts, same offsets, same orders — for any executor.
  // Duplicate pairs within a step, boundary-ending contacts, and empty
  // steps are all present in the random traces.
  engine::ThreadPool pool(8);
  const util::ParallelFor pooled = engine::parallel_for(pool);
  for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
    const auto trace = random_contacts(150, 4000, 1800.0, seed);
    const SpaceTimeGraph serial(trace, 10.0);
    const SpaceTimeGraph sharded_serial(trace, 10.0,
                                        util::serial_parallel_for());
    const SpaceTimeGraph sharded_pooled(trace, 10.0, pooled);
    EXPECT_TRUE(serial.arenas_identical(sharded_serial)) << "seed " << seed;
    EXPECT_TRUE(serial.arenas_identical(sharded_pooled)) << "seed " << seed;
  }
}

TEST(SpaceTimeGraph, ShardedBuildMatchesSerialOnDegenerateTraces) {
  engine::ThreadPool pool(4);
  const util::ParallelFor pooled = engine::parallel_for(pool);
  // Empty trace: no contacts to shard over.
  const ContactTrace empty({}, 3, 50.0);
  EXPECT_TRUE(SpaceTimeGraph(empty, 10.0).arenas_identical(
      SpaceTimeGraph(empty, 10.0, pooled)));
  // One contact: fewer contacts than shards.
  const auto tiny = make_trace({Contact::make(0, 1, 5.0, 8.0)}, 2, 60.0);
  EXPECT_TRUE(SpaceTimeGraph(tiny, 10.0).arenas_identical(
      SpaceTimeGraph(tiny, 10.0, pooled)));
  // All contacts in one step: every other shard row is empty.
  const auto burst = random_contacts(64, 500, 10.0, 9);
  EXPECT_TRUE(SpaceTimeGraph(burst, 10.0).arenas_identical(
      SpaceTimeGraph(burst, 10.0, pooled)));
}

TEST(Components, StepComponentsMatchUnionFindOracle) {
  // The word-parallel flood kernel consumes step_components_at; its
  // masks, member lists, and word lists must describe exactly the
  // non-singleton components the UnionFind oracle labels.
  const auto trace = random_contacts(200, 3000, 600.0, 17);
  const SpaceTimeGraph g(trace, 10.0);
  StepComponentScratch scratch;
  for (const Step s : g.active_steps()) {
    const std::size_t count = step_components_at(g, s, scratch);
    const auto labels = components_at(g, s);

    // Oracle: label -> members, non-singleton only (step_components_at
    // never materializes isolated nodes).
    std::map<NodeId, std::vector<NodeId>> oracle;
    for (NodeId v = 0; v < g.num_nodes(); ++v)
      oracle[labels[v]].push_back(v);
    std::erase_if(oracle, [](const auto& kv) {
      return kv.second.size() < 2;
    });

    ASSERT_EQ(count, oracle.size()) << "step " << s;
    for (std::size_t c = 0; c < count; ++c) {
      const StepComponent& comp = scratch.pool[c];
      ASSERT_FALSE(comp.members.empty());
      // The discovery-order front is the canonical (smallest) label.
      const NodeId label = comp.members.front();
      ASSERT_EQ(label, *std::min_element(comp.members.begin(),
                                         comp.members.end()));
      const auto it = oracle.find(label);
      ASSERT_NE(it, oracle.end()) << "step " << s;
      std::vector<NodeId> sorted_members = comp.members;
      std::sort(sorted_members.begin(), sorted_members.end());
      EXPECT_EQ(sorted_members, it->second);
      EXPECT_EQ(comp.size, it->second.size());
      EXPECT_EQ(comp.mask.count(), comp.size);
      for (const NodeId v : it->second) EXPECT_TRUE(comp.mask.test(v));
      // words lists exactly the nonzero mask words, ascending.
      std::vector<std::uint32_t> expected_words;
      for (std::uint32_t w = 0; w < comp.mask.num_words(); ++w)
        if (comp.mask.word(w) != 0) expected_words.push_back(w);
      EXPECT_EQ(comp.words, expected_words);
    }
  }
}

TEST(UnionFindTest, BasicMerging) {
  UnionFind uf(5);
  EXPECT_TRUE(uf.unite(0, 1));
  EXPECT_TRUE(uf.unite(1, 2));
  EXPECT_FALSE(uf.unite(0, 2));
  EXPECT_EQ(uf.find(0), uf.find(2));
  EXPECT_NE(uf.find(0), uf.find(3));
}

TEST(Components, LabelsAreCanonicalSmallestMember) {
  const auto trace = make_trace(
      {
          Contact::make(2, 4, 0.0, 5.0),
          Contact::make(4, 1, 0.0, 5.0),
      },
      6, 10.0);
  const SpaceTimeGraph g(trace, 10.0);
  const auto labels = components_at(g, 0);
  EXPECT_EQ(labels[1], 1u);
  EXPECT_EQ(labels[2], 1u);
  EXPECT_EQ(labels[4], 1u);
  EXPECT_EQ(labels[0], 0u);  // isolated nodes are singletons.
  EXPECT_EQ(labels[3], 3u);
  EXPECT_EQ(labels[5], 5u);
}

TEST(Components, SizesSumToPopulation) {
  const auto trace = make_trace(
      {
          Contact::make(0, 1, 0.0, 5.0),
          Contact::make(2, 3, 0.0, 5.0),
      },
      5, 10.0);
  const SpaceTimeGraph g(trace, 10.0);
  const auto sizes = component_sizes_at(g, 0);
  NodeId total = 0;
  for (const auto& [label, size] : sizes) total += size;
  EXPECT_EQ(total, 5u);
}

TEST(Reachability, DirectContactDelivers) {
  const auto trace = make_trace({Contact::make(0, 1, 15.0, 18.0)}, 2, 60.0);
  const SpaceTimeGraph g(trace, 10.0);
  const auto d = optimal_duration(g, 0, 1, 0.0);
  ASSERT_TRUE(d.has_value());
  EXPECT_DOUBLE_EQ(*d, 20.0);  // end of step 1.
}

TEST(SpaceTimeGraph, ActiveStepIndexListsOnlyStepsWithEdges) {
  // Contacts land in steps 1 and 5 of a 10-step window; everything else
  // is a gap the event timeline must skip.
  const auto trace = make_trace(
      {
          Contact::make(0, 1, 12.0, 15.0),
          Contact::make(1, 2, 52.0, 55.0),
      },
      3, 100.0);
  const SpaceTimeGraph g(trace, 10.0);
  ASSERT_EQ(g.num_steps(), 10u);
  const auto active = g.active_steps();
  ASSERT_EQ(g.num_active_steps(), 2u);
  EXPECT_EQ(active[0], 1u);
  EXPECT_EQ(active[1], 5u);
}

TEST(SpaceTimeGraph, NextActiveStepCursor) {
  const auto trace = make_trace(
      {
          Contact::make(0, 1, 12.0, 15.0),
          Contact::make(1, 2, 52.0, 55.0),
      },
      3, 100.0);
  const SpaceTimeGraph g(trace, 10.0);
  EXPECT_EQ(g.next_active_step(0), 1u);
  EXPECT_EQ(g.next_active_step(1), 1u);  // active steps return themselves.
  EXPECT_EQ(g.next_active_step(2), 5u);
  EXPECT_EQ(g.next_active_step(5), 5u);
  // Past the last contact the cursor reports the end of the replay.
  EXPECT_EQ(g.next_active_step(6), g.num_steps());
  EXPECT_EQ(g.next_active_step(9), g.num_steps());
}

TEST(SpaceTimeGraph, ActiveStepIndexOnEmptyTrace) {
  const auto trace = make_trace({}, 3, 50.0);
  const SpaceTimeGraph g(trace, 10.0);
  EXPECT_EQ(g.num_active_steps(), 0u);
  EXPECT_TRUE(g.active_steps().empty());
  EXPECT_EQ(g.next_active_step(0), g.num_steps());
}

TEST(SpaceTimeGraph, ActiveStepIndexMatchesEdgeRanges) {
  // Cross-check the index against edges(s) on a denser example.
  const auto trace = make_trace(
      {
          Contact::make(0, 1, 0.0, 25.0),
          Contact::make(2, 3, 40.0, 45.0),
          Contact::make(1, 3, 41.0, 44.0),
      },
      4, 60.0);
  const SpaceTimeGraph g(trace, 10.0);
  std::vector<Step> expected;
  for (Step s = 0; s < g.num_steps(); ++s)
    if (!g.edges(s).empty()) expected.push_back(s);
  const auto active = g.active_steps();
  ASSERT_EQ(active.size(), expected.size());
  EXPECT_TRUE(std::equal(active.begin(), active.end(), expected.begin()));
}

TEST(Reachability, MultiHopOverTime) {
  const auto trace = make_trace(
      {
          Contact::make(0, 1, 5.0, 8.0),     // step 0
          Contact::make(1, 2, 25.0, 28.0),   // step 2
      },
      3, 60.0);
  const SpaceTimeGraph g(trace, 10.0);
  const auto d = optimal_duration(g, 0, 2, 0.0);
  ASSERT_TRUE(d.has_value());
  EXPECT_DOUBLE_EQ(*d, 30.0);  // end of step 2.
}

TEST(Reachability, ZeroWeightClosureWithinStep) {
  // Chain 0-1-2-3 all in one step: everything reachable that step.
  const auto trace = make_trace(
      {
          Contact::make(0, 1, 0.0, 5.0),
          Contact::make(1, 2, 0.0, 5.0),
          Contact::make(2, 3, 0.0, 5.0),
      },
      4, 30.0);
  const SpaceTimeGraph g(trace, 10.0);
  const auto r = earliest_delivery(g, 0, 0.0);
  for (NodeId v = 0; v < 4; ++v) {
    ASSERT_TRUE(r.reached(v));
    EXPECT_EQ(*r.arrival_step[v], 0u);
  }
}

TEST(Reachability, RespectsMessageStartTime) {
  // Contact happens before the message exists: unusable.
  const auto trace = make_trace({Contact::make(0, 1, 5.0, 8.0)}, 2, 60.0);
  const SpaceTimeGraph g(trace, 10.0);
  EXPECT_FALSE(optimal_duration(g, 0, 1, 20.0).has_value());
}

TEST(Reachability, TimeOrderingMatters) {
  // 1-2 contact happens before 0-1: a message from 0 cannot use it.
  const auto trace = make_trace(
      {
          Contact::make(1, 2, 5.0, 8.0),    // step 0
          Contact::make(0, 1, 25.0, 28.0),  // step 2
      },
      3, 60.0);
  const SpaceTimeGraph g(trace, 10.0);
  EXPECT_FALSE(optimal_duration(g, 0, 2, 0.0).has_value());
  ASSERT_TRUE(optimal_duration(g, 0, 1, 0.0).has_value());
}

TEST(Reachability, UnreachableNodeHasNoValue) {
  const auto trace = make_trace({Contact::make(0, 1, 0.0, 5.0)}, 3, 30.0);
  const SpaceTimeGraph g(trace, 10.0);
  const auto r = earliest_delivery(g, 0, 0.0);
  EXPECT_TRUE(r.reached(1));
  EXPECT_FALSE(r.reached(2));
}

TEST(Reachability, SourceReachedImmediately) {
  const auto trace = make_trace({Contact::make(0, 1, 50.0, 55.0)}, 2, 60.0);
  const SpaceTimeGraph g(trace, 10.0);
  const auto r = earliest_delivery(g, 0, 12.0);
  ASSERT_TRUE(r.reached(0));
  EXPECT_EQ(*r.arrival_step[0], 1u);
}

}  // namespace
}  // namespace psn::graph
