// Tests for psn::stats: CDFs, histograms, summaries, box stats, tables.

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "psn/stats/box_stats.hpp"
#include "psn/stats/cdf.hpp"
#include "psn/stats/histogram.hpp"
#include "psn/stats/summary.hpp"
#include "psn/stats/table.hpp"
#include "psn/util/rng.hpp"

namespace psn::stats {
namespace {

TEST(EmpiricalCdf, EmptyBehaves) {
  EmpiricalCdf cdf;
  EXPECT_TRUE(cdf.empty());
  EXPECT_EQ(cdf.at(0.0), 0.0);
  EXPECT_TRUE(cdf.evaluate(10).empty());
}

TEST(EmpiricalCdf, StepFunction) {
  EmpiricalCdf cdf({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(cdf.at(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf.at(1.0), 0.25);
  EXPECT_DOUBLE_EQ(cdf.at(2.5), 0.5);
  EXPECT_DOUBLE_EQ(cdf.at(4.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.at(100.0), 1.0);
}

TEST(EmpiricalCdf, HandlesDuplicates) {
  EmpiricalCdf cdf({2.0, 2.0, 2.0, 5.0});
  EXPECT_DOUBLE_EQ(cdf.at(2.0), 0.75);
  EXPECT_DOUBLE_EQ(cdf.at(4.9), 0.75);
}

TEST(EmpiricalCdf, Quantiles) {
  EmpiricalCdf cdf({10.0, 20.0, 30.0, 40.0, 50.0});
  EXPECT_DOUBLE_EQ(cdf.quantile(0.2), 10.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.5), 30.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(1.0), 50.0);
  EXPECT_DOUBLE_EQ(cdf.median(), 30.0);
}

TEST(EmpiricalCdf, QuantileOfEmptyThrows) {
  EmpiricalCdf cdf;
  EXPECT_THROW((void)cdf.quantile(0.5), std::logic_error);
}

TEST(EmpiricalCdf, EvaluateSeriesIsMonotone) {
  util::Rng rng(5);
  std::vector<double> sample;
  for (int i = 0; i < 1000; ++i) sample.push_back(rng.normal(10.0, 3.0));
  EmpiricalCdf cdf(std::move(sample));
  const auto pts = cdf.evaluate(50);
  ASSERT_EQ(pts.size(), 50u);
  for (std::size_t i = 1; i < pts.size(); ++i) {
    EXPECT_LE(pts[i - 1].x, pts[i].x);
    EXPECT_LE(pts[i - 1].p, pts[i].p);
  }
  EXPECT_DOUBLE_EQ(pts.back().p, 1.0);
}

TEST(EmpiricalCdf, EvaluateAtChosenPoints) {
  EmpiricalCdf cdf({1.0, 2.0});
  const auto pts = cdf.evaluate_at({0.0, 1.5, 3.0});
  ASSERT_EQ(pts.size(), 3u);
  EXPECT_DOUBLE_EQ(pts[0].p, 0.0);
  EXPECT_DOUBLE_EQ(pts[1].p, 0.5);
  EXPECT_DOUBLE_EQ(pts[2].p, 1.0);
}

TEST(KsStatistic, IdenticalSamplesZero) {
  EmpiricalCdf a({1.0, 2.0, 3.0});
  EmpiricalCdf b({1.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(ks_statistic(a, b), 0.0);
}

TEST(KsStatistic, DisjointSamplesOne) {
  EmpiricalCdf a({1.0, 2.0});
  EmpiricalCdf b({10.0, 20.0});
  EXPECT_DOUBLE_EQ(ks_statistic(a, b), 1.0);
}

TEST(Histogram, BinsAndEdges) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_EQ(h.bin_count(), 5u);
  EXPECT_DOUBLE_EQ(h.bin_width(), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_left(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_left(4), 8.0);
  EXPECT_DOUBLE_EQ(h.bin_center(0), 1.0);
}

TEST(Histogram, AddAndCount) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);
  h.add(1.9);
  h.add(9.9);
  EXPECT_DOUBLE_EQ(h.count(0), 2.0);
  EXPECT_DOUBLE_EQ(h.count(4), 1.0);
  EXPECT_DOUBLE_EQ(h.total(), 3.0);
}

TEST(Histogram, OutOfRangeClamped) {
  Histogram h(0.0, 10.0, 5);
  h.add(-100.0);
  h.add(100.0);
  EXPECT_DOUBLE_EQ(h.count(0), 1.0);
  EXPECT_DOUBLE_EQ(h.count(4), 1.0);
}

TEST(Histogram, WeightsAndCumulative) {
  Histogram h(0.0, 4.0, 4);
  h.add(0.5, 2.0);
  h.add(1.5, 3.0);
  h.add(3.5, 5.0);
  const auto c = h.cumulative();
  ASSERT_EQ(c.size(), 4u);
  EXPECT_DOUBLE_EQ(c[0], 2.0);
  EXPECT_DOUBLE_EQ(c[1], 5.0);
  EXPECT_DOUBLE_EQ(c[2], 5.0);
  EXPECT_DOUBLE_EQ(c[3], 10.0);
}

TEST(Histogram, RejectsBadArgs) {
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
  EXPECT_THROW(Histogram(1.0, 1.0, 3), std::invalid_argument);
}

TEST(Accumulator, MeanVarianceMinMax) {
  Accumulator acc;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) acc.add(x);
  EXPECT_EQ(acc.count(), 8u);
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  EXPECT_NEAR(acc.variance(), 4.571428571, 1e-9);
  EXPECT_DOUBLE_EQ(acc.min(), 2.0);
  EXPECT_DOUBLE_EQ(acc.max(), 9.0);
}

TEST(Accumulator, SingleSampleNoVariance) {
  Accumulator acc;
  acc.add(3.0);
  EXPECT_DOUBLE_EQ(acc.variance(), 0.0);
  EXPECT_DOUBLE_EQ(acc.stderr_mean(), 0.0);
}

TEST(CiHalfwidth, MatchesNormalQuantile) {
  Accumulator acc;
  util::Rng rng(3);
  for (int i = 0; i < 10000; ++i) acc.add(rng.normal(0.0, 1.0));
  // 99% CI half-width: 2.5758 * sigma / sqrt(n).
  const double expected = 2.5758 * acc.stddev() / std::sqrt(10000.0);
  EXPECT_NEAR(ci_halfwidth(acc, 0.99), expected, expected * 0.01);
}

TEST(CiHalfwidth, RejectsBadConfidence) {
  Accumulator acc;
  acc.add(1.0);
  acc.add(2.0);
  EXPECT_THROW((void)ci_halfwidth(acc, 0.0), std::invalid_argument);
  EXPECT_THROW((void)ci_halfwidth(acc, 1.0), std::invalid_argument);
}

TEST(Pearson, PerfectCorrelation) {
  const std::vector<double> xs{1, 2, 3, 4};
  const std::vector<double> ys{2, 4, 6, 8};
  EXPECT_NEAR(pearson(xs, ys), 1.0, 1e-12);
}

TEST(Pearson, PerfectAnticorrelation) {
  const std::vector<double> xs{1, 2, 3, 4};
  const std::vector<double> ys{8, 6, 4, 2};
  EXPECT_NEAR(pearson(xs, ys), -1.0, 1e-12);
}

TEST(Pearson, IndependentNearZero) {
  util::Rng rng(9);
  std::vector<double> xs;
  std::vector<double> ys;
  for (int i = 0; i < 20000; ++i) {
    xs.push_back(rng.uniform());
    ys.push_back(rng.uniform());
  }
  EXPECT_NEAR(pearson(xs, ys), 0.0, 0.03);
}

TEST(Pearson, DegenerateIsZero) {
  EXPECT_DOUBLE_EQ(pearson({1, 1, 1}, {1, 2, 3}), 0.0);
}

TEST(Pearson, SizeMismatchThrows) {
  EXPECT_THROW((void)pearson({1.0}, {1.0, 2.0}), std::invalid_argument);
}

TEST(BoxStatsTest, QuartilesOfKnownSample) {
  const auto b = box_stats({1, 2, 3, 4, 5, 6, 7, 8, 9});
  EXPECT_DOUBLE_EQ(b.median, 5.0);
  EXPECT_DOUBLE_EQ(b.q1, 3.0);
  EXPECT_DOUBLE_EQ(b.q3, 7.0);
  EXPECT_DOUBLE_EQ(b.mean, 5.0);
  EXPECT_EQ(b.n, 9u);
}

TEST(BoxStatsTest, WhiskersExcludeOutliers) {
  // 100 is far outside q3 + 1.5 IQR.
  const auto b = box_stats({1, 2, 3, 4, 5, 6, 7, 8, 100});
  EXPECT_LT(b.whisker_hi, 100.0);
  EXPECT_DOUBLE_EQ(b.whisker_lo, 1.0);
}

TEST(BoxStatsTest, EmptyThrows) {
  EXPECT_THROW((void)box_stats({}), std::invalid_argument);
}

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer-name", "2.50"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("longer-name"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(TablePrinterTest, FmtPrecision) {
  EXPECT_EQ(TablePrinter::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::fmt(2.0, 0), "2");
}

TEST(TablePrinterTest, ShortRowsPadded) {
  TablePrinter t({"a", "b", "c"});
  t.add_row({"only"});
  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find("only"), std::string::npos);
}

}  // namespace
}  // namespace psn::stats
