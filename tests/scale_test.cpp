// Scale-tier tests: metro_16k and megacity_65k, the tiers the parallel
// scenario construction and word-parallel flood kernels exist for.
//
// These populations are two orders of magnitude past the paper's 98
// nodes, so every test here runs a deliberately small workload — the
// point is that construction is executor-invariant and the simulator
// completes and stays bit-identical at scale, not to benchmark (the
// perf trajectory lives in bench/perf_microbench). Budgeted to stay
// comfortably inside the 600 s sanitizer-build test timeout.

#include <gtest/gtest.h>

#include <cstddef>

#include "psn/core/workload.hpp"
#include "psn/engine/run_spec.hpp"
#include "psn/engine/scenario_context.hpp"
#include "psn/engine/scenario_registry.hpp"
#include "psn/engine/sweep.hpp"
#include "psn/engine/thread_pool.hpp"
#include "psn/forward/algorithm_registry.hpp"
#include "psn/forward/simulator.hpp"
#include "psn/graph/space_time_graph.hpp"
#include "psn/util/parallel.hpp"

namespace psn::engine {
namespace {

/// One pool for the whole suite; the registry's name-keyed dataset cache
/// plus this static holder make every test share a single metro
/// generation.
ThreadPool& shared_pool() {
  static ThreadPool pool(8);
  return pool;
}

const Scenario& metro_scenario() {
  static const Scenario scenario =
      make_scenario_by_name("metro_16k", parallel_for(shared_pool()));
  return scenario;
}

TEST(ScaleTiers, MetroDatasetMatchesItsBilling) {
  const auto& scenario = metro_scenario();
  ASSERT_TRUE(scenario.dataset != nullptr);
  EXPECT_EQ(scenario.dataset->trace.num_nodes(), 16384u);
  // Sparse-regime sanity: orders of magnitude fewer contacts than pairs,
  // but enough that the population is actually connected over time.
  EXPECT_GT(scenario.dataset->trace.size(), 100000u);
  EXPECT_LT(scenario.dataset->trace.size(), 10000000u);
}

TEST(ScaleTiers, MetroShardedGraphBuildMatchesSerialByteForByte) {
  // The acceptance bar for the parallel construction path: at a tier
  // where sharding actually matters, serial and pool-sharded builds
  // produce byte-identical arenas.
  const auto& scenario = metro_scenario();
  const graph::SpaceTimeGraph serial(scenario.dataset->trace, scenario.delta);
  const graph::SpaceTimeGraph sharded(scenario.dataset->trace, scenario.delta,
                                      parallel_for(shared_pool()));
  EXPECT_TRUE(serial.arenas_identical(sharded));
  EXPECT_GT(serial.total_edges(), 0u);
}

TEST(ScaleTiers, MetroSweepBitIdenticalAcrossThreadsAndKernels) {
  // metro_16k end to end through run_sweep: 1-thread vs 8-thread pools
  // and word-parallel vs scalar flood kernels all land on bit-identical
  // cells. The workload is small (a handful of messages) because the
  // scalar-oracle leg is the expensive one at 16k nodes.
  const auto& scenario = metro_scenario();
  PlanConfig config;
  config.runs = 1;
  config.master_seed = 23;
  config.message_rate = 0.002;
  const auto plan = make_plan({scenario}, {"Epidemic"}, config);

  SweepOptions serial;
  serial.threads = 1;
  SweepOptions wide;
  wide.threads = 8;
  wide.intra_run_parallel = true;
  SweepOptions scalar;
  scalar.threads = 8;
  scalar.flood_kernel = forward::FloodKernel::kScalar;

  const auto a = run_sweep(plan, serial);
  const auto b = run_sweep(plan, wide);
  const auto c = run_sweep(plan, scalar);
  ASSERT_EQ(a.cells.size(), 1u);
  for (const auto* other : {&b, &c}) {
    ASSERT_EQ(other->cells.size(), 1u);
    EXPECT_EQ(a.cells[0].overall.messages, other->cells[0].overall.messages);
    EXPECT_EQ(a.cells[0].overall.delivered, other->cells[0].overall.delivered);
    // Bit-identical, hence EXPECT_EQ on doubles — no tolerance.
    EXPECT_EQ(a.cells[0].overall.success_rate,
              other->cells[0].overall.success_rate);
    EXPECT_EQ(a.cells[0].overall.average_delay,
              other->cells[0].overall.average_delay);
    EXPECT_EQ(a.cells[0].overall.average_hops,
              other->cells[0].overall.average_hops);
    EXPECT_EQ(a.cells[0].cost_per_message, other->cells[0].cost_per_message);
  }
  EXPECT_GT(a.cells[0].overall.delivered, 0u);
}

void expect_cells_match(const SweepResult& a, const SweepResult& b) {
  ASSERT_EQ(a.cells.size(), b.cells.size());
  for (std::size_t c = 0; c < a.cells.size(); ++c) {
    EXPECT_EQ(a.cells[c].overall.messages, b.cells[c].overall.messages);
    EXPECT_EQ(a.cells[c].overall.delivered, b.cells[c].overall.delivered);
    // Bit-identical, hence EXPECT_EQ on doubles — no tolerance.
    EXPECT_EQ(a.cells[c].overall.success_rate,
              b.cells[c].overall.success_rate);
    EXPECT_EQ(a.cells[c].overall.average_delay,
              b.cells[c].overall.average_delay);
    EXPECT_EQ(a.cells[c].overall.average_hops, b.cells[c].overall.average_hops);
    EXPECT_EQ(a.cells[c].cost_per_message, b.cells[c].cost_per_message);
    EXPECT_EQ(a.cells[c].truncated_relay_steps,
              b.cells[c].truncated_relay_steps);
    EXPECT_EQ(a.cells[c].expirations, b.cells[c].expirations);
    EXPECT_EQ(a.cells[c].evictions, b.cells[c].evictions);
    EXPECT_EQ(a.cells[c].drops, b.cells[c].drops);
    EXPECT_EQ(a.cells[c].budget_blocked, b.cells[c].budget_blocked);
    EXPECT_EQ(a.cells[c].buffer_rejections, b.cells[c].buffer_rejections);
  }
}

TEST(ScaleTiers, CityNonFloodFastPathMatchesScalarOracleAcrossThreads) {
  // city_2048: the holder-incident scan with shared observation
  // snapshots (the defaults) vs the full-replay per-run-observation
  // oracle, for an adopting single-copy algorithm and an adopting
  // replicator, at 1 and 8 threads.
  const auto scenario = make_scenario_by_name("city_2048");
  PlanConfig config;
  config.runs = 1;
  config.master_seed = 29;
  config.message_rate = 0.002;
  const auto plan = make_plan({scenario}, {"FRESH", "PRoPHET"}, config);

  SweepOptions oracle;
  oracle.threads = 8;
  oracle.contact_scan = forward::ContactScan::kFull;
  oracle.observation = ObservationMode::kPerRun;
  const auto reference = run_sweep(plan, oracle);
  ASSERT_EQ(reference.cells.size(), 2u);
  EXPECT_GT(reference.cells[0].overall.delivered +
                reference.cells[1].overall.delivered,
            0u);

  for (const std::size_t threads : {1u, 8u}) {
    SweepOptions fast;
    fast.threads = threads;  // kHolderIncident + kShared defaults.
    expect_cells_match(reference, run_sweep(plan, fast));
  }
}

TEST(ScaleTiers, MetroNonFloodFastPathMatchesScalarOracle) {
  // metro_16k is the tier the holder-incident replay exists for: the
  // scalar oracle (full per-step scans + a 16k x 16k per-run FRESH
  // table) is run once here as the reference; the fast path must match
  // it bit for bit at 1 and 8 threads. Workload kept small — the oracle
  // leg is the expensive one.
  const auto& scenario = metro_scenario();
  PlanConfig config;
  config.runs = 1;
  config.master_seed = 31;
  config.message_rate = 0.002;
  const auto plan = make_plan({scenario}, {"FRESH"}, config);

  SweepOptions oracle;
  oracle.threads = 8;
  oracle.contact_scan = forward::ContactScan::kFull;
  oracle.observation = ObservationMode::kPerRun;
  const auto reference = run_sweep(plan, oracle);
  ASSERT_EQ(reference.cells.size(), 1u);

  for (const std::size_t threads : {1u, 8u}) {
    SweepOptions fast;
    fast.threads = threads;
    expect_cells_match(reference, run_sweep(plan, fast));
  }
}

TEST(ScaleTiers, MegacityBuildsAndCompletesAnEpidemicRun) {
  // The ceiling tier: 65 536 nodes must generate (sharded), discretize
  // (sharded CSR build), and carry an epidemic flood to completion with
  // the word-parallel kernel. The scalar oracle is not run here — it is
  // minutes at this scale; kernel equivalence is pinned at metro_16k and
  // below.
  const util::ParallelFor pooled = parallel_for(shared_pool());
  const auto scenario = make_scenario_by_name("megacity_65k", pooled);
  ASSERT_TRUE(scenario.dataset != nullptr);
  EXPECT_EQ(scenario.dataset->trace.num_nodes(), 65536u);
  EXPECT_GT(scenario.dataset->trace.size(), 500000u);

  const auto context =
      ScenarioContextCache::instance().acquire(scenario, &pooled);
  ASSERT_TRUE(context->graph != nullptr);
  EXPECT_GT(context->graph->total_edges(), 0u);

  core::WorkloadConfig wc;
  wc.mode = core::WorkloadMode::kFixedCount;
  wc.count = 6;
  wc.horizon = scenario.dataset->message_horizon;
  wc.seed = 5;
  const auto messages =
      core::generate_workload(scenario.dataset->trace.num_nodes(), wc);
  ASSERT_EQ(messages.size(), 6u);

  const auto algorithm = forward::make_algorithm("Epidemic");
  forward::SimulationRequest request;
  request.algorithm = algorithm.get();
  request.graph = context->graph.get();
  request.trace = &scenario.dataset->trace;
  request.messages = &messages;
  request.parallel = &pooled;
  const auto result = forward::simulate(request);

  EXPECT_EQ(result.outcomes.size(), messages.size());
  EXPECT_GT(result.delivered_count(), 0u);
  EXPECT_GT(result.transmissions, 0u);
}

}  // namespace
}  // namespace psn::engine
