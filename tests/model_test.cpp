// Tests for psn::model: closed forms of §5.1.3, the truncated ODE system,
// the Kurtz-limit agreement of the jump simulator, and the heterogeneous
// Monte Carlo quadrant hypotheses of §5.2.

#include <gtest/gtest.h>

#include <cmath>

#include "psn/model/heterogeneous_mc.hpp"
#include "psn/model/homogeneous_model.hpp"
#include "psn/model/jump_simulator.hpp"
#include "psn/model/ode.hpp"

namespace psn::model {
namespace {

TEST(Rk4, IntegratesExponential) {
  // y' = y, y(0) = 1 -> y(1) = e.
  const OdeRhs rhs = [](double, const std::vector<double>& y,
                        std::vector<double>& dy) { dy[0] = y[0]; };
  const auto y = rk4_integrate(rhs, {1.0}, 0.0, 1.0, 0.01);
  EXPECT_NEAR(y[0], std::exp(1.0), 1e-8);
}

TEST(Rk4, IntegratesHarmonicOscillator) {
  // y'' = -y as a system; after 2*pi back to the start.
  const OdeRhs rhs = [](double, const std::vector<double>& y,
                        std::vector<double>& dy) {
    dy[0] = y[1];
    dy[1] = -y[0];
  };
  const auto y =
      rk4_integrate(rhs, {1.0, 0.0}, 0.0, 2.0 * 3.14159265358979323846, 1e-3);
  EXPECT_NEAR(y[0], 1.0, 1e-6);
  EXPECT_NEAR(y[1], 0.0, 1e-6);
}

TEST(Rk4, ObserverSeesEndpoints) {
  const OdeRhs rhs = [](double, const std::vector<double>&,
                        std::vector<double>& dy) { dy[0] = 1.0; };
  double first = -1.0;
  double last = -1.0;
  (void)rk4_integrate_observed(
      rhs, {0.0}, 0.0, 1.0, 0.1,
      [&](double t, const std::vector<double>&) {
        if (first < 0.0) first = t;
        last = t;
      });
  EXPECT_DOUBLE_EQ(first, 0.0);
  EXPECT_DOUBLE_EQ(last, 1.0);
}

TEST(Rk4, RejectsBadArgs) {
  const OdeRhs rhs = [](double, const std::vector<double>&,
                        std::vector<double>& dy) { dy[0] = 0.0; };
  EXPECT_THROW((void)rk4_integrate(rhs, {0.0}, 0.0, 1.0, 0.0),
               std::invalid_argument);
  EXPECT_THROW((void)rk4_integrate(rhs, {0.0}, 1.0, 0.0, 0.1),
               std::invalid_argument);
}

TEST(HomogeneousModelTest, MeanGrowsExponentially) {
  HomogeneousModel m;
  m.lambda = 0.03;
  m.population = 200;
  // Eq. 4: E[S(t)] = (1/N) e^{lambda t}.
  EXPECT_NEAR(m.mean_paths(0.0), 1.0 / 200.0, 1e-15);
  EXPECT_NEAR(m.mean_paths(100.0) / m.mean_paths(0.0), std::exp(3.0), 1e-9);
}

TEST(HomogeneousModelTest, PhiAtOneIsOne) {
  HomogeneousModel m;
  m.lambda = 0.05;
  m.population = 100;
  for (const double t : {0.0, 10.0, 100.0})
    EXPECT_DOUBLE_EQ(m.phi(1.0, t), 1.0);
}

TEST(HomogeneousModelTest, PhiDecaysForXBelowOne) {
  HomogeneousModel m;
  m.lambda = 0.05;
  m.population = 50;
  // Eq. 2: phi decreasing in t toward 0 for 0 <= x < 1.
  const double p0 = m.phi(0.5, 0.0);
  const double p1 = m.phi(0.5, 50.0);
  const double p2 = m.phi(0.5, 200.0);
  EXPECT_GT(p0, p1);
  EXPECT_GT(p1, p2);
  EXPECT_GT(p2, 0.0);
}

TEST(HomogeneousModelTest, PhiDerivativeMatchesMean) {
  // Numerical d(phi)/dx at x=1- equals E[S(t)].
  HomogeneousModel m;
  m.lambda = 0.04;
  m.population = 100;
  const double t = 60.0;
  const double h = 1e-6;
  const double numeric = (m.phi(1.0, t) - m.phi(1.0 - h, t)) / h;
  EXPECT_NEAR(numeric, m.mean_paths(t), 1e-4 * m.mean_paths(t) + 1e-9);
}

TEST(HomogeneousModelTest, BlowupTimeMatchesClosedForm) {
  HomogeneousModel m;
  m.lambda = 0.05;
  m.population = 100;
  const double x = 2.0;
  const double tc = m.blowup_time(x);
  // Just before TC phi is finite and large; after TC it throws.
  EXPECT_GT(m.phi(x, tc * 0.999), m.phi(x, 0.0));
  EXPECT_THROW((void)m.phi(x, tc * 1.01), std::domain_error);
  EXPECT_THROW((void)m.blowup_time(0.5), std::domain_error);
}

TEST(HomogeneousModelTest, VarianceFormula) {
  HomogeneousModel m;
  m.lambda = 0.02;
  m.population = 100;
  // At t=0: Bernoulli(1/N) variance.
  EXPECT_NEAR(m.variance_paths(0.0), (1.0 / 100) * (1 - 1.0 / 100), 1e-12);
  // Variance grows ~ e^{2 lambda t} at late t: doubling t multiplies by
  // ~e^{2 lambda dt}.
  const double v1 = m.variance_paths(200.0);
  const double v2 = m.variance_paths(250.0);
  EXPECT_NEAR(v2 / v1, std::exp(2.0 * 0.02 * 50.0), 0.2);
}

TEST(HomogeneousModelTest, ExpectedFirstPathTime) {
  HomogeneousModel m;
  m.lambda = 0.05;
  m.population = 100;
  EXPECT_NEAR(m.expected_first_path_time(), std::log(100.0) / 0.05, 1e-12);
}

TEST(HomogeneousModelTest, ClosedFormDensityAtTimeZero) {
  HomogeneousModel m;
  m.lambda = 0.05;
  m.population = 100;
  EXPECT_NEAR(m.density_closed_form(0, 0.0), 0.99, 1e-12);
  EXPECT_NEAR(m.density_closed_form(1, 0.0), 0.01, 1e-12);
  EXPECT_NEAR(m.density_closed_form(2, 0.0), 0.0, 1e-12);
}

TEST(HomogeneousModelTest, ClosedFormDensitySumsToOne) {
  HomogeneousModel m;
  m.lambda = 0.05;
  m.population = 100;
  for (const double t : {10.0, 50.0, 100.0}) {
    double sum = 0.0;
    for (std::size_t k = 0; k < 4000; ++k)
      sum += m.density_closed_form(k, t);
    EXPECT_NEAR(sum, 1.0, 1e-9) << "t=" << t;
  }
}

TEST(HomogeneousModelTest, ClosedFormDensityMeanMatchesEq4) {
  HomogeneousModel m;
  m.lambda = 0.04;
  m.population = 200;
  const double t = 80.0;
  double mean = 0.0;
  for (std::size_t k = 1; k < 20000; ++k)
    mean += static_cast<double>(k) * m.density_closed_form(k, t);
  EXPECT_NEAR(mean, m.mean_paths(t), m.mean_paths(t) * 1e-6);
}

TEST(DensityOde, MatchesClosedFormDensity) {
  // The K-truncated numeric ODE and the generating-function coefficients
  // must agree on the low states while the sink is still empty.
  HomogeneousModel m;
  m.lambda = 0.05;
  m.population = 100;
  const auto traj = integrate_density_ode(m, 128, 60.0, 0.05, 4);
  for (const auto& p : traj) {
    for (std::size_t k = 0; k <= 5; ++k) {
      const double closed = m.density_closed_form(k, p.t);
      EXPECT_NEAR(p.u[k], closed, 1e-6 + closed * 1e-3)
          << "t=" << p.t << " k=" << k;
    }
  }
}

TEST(DensityOde, ConservesMass) {
  HomogeneousModel m;
  m.lambda = 0.05;
  m.population = 100;
  const auto traj = integrate_density_ode(m, 64, 150.0, 0.05, 10);
  ASSERT_FALSE(traj.empty());
  for (const auto& p : traj) EXPECT_NEAR(total_mass(p.u), 1.0, 1e-8);
}

TEST(DensityOde, MeanMatchesClosedFormBeforeTruncationBites) {
  HomogeneousModel m;
  m.lambda = 0.05;
  m.population = 100;
  // Track enough states that the truncation sink stays empty over [0, 80].
  const auto traj = integrate_density_ode(m, 128, 80.0, 0.05, 9);
  for (const auto& p : traj) {
    const double expected = m.mean_paths(p.t);
    EXPECT_NEAR(p.mean, expected, expected * 0.02 + 1e-9) << "t=" << p.t;
  }
}

TEST(DensityOde, U0DecaysMonotonically) {
  HomogeneousModel m;
  m.lambda = 0.05;
  m.population = 100;
  const auto traj = integrate_density_ode(m, 32, 120.0, 0.05, 12);
  for (std::size_t i = 1; i < traj.size(); ++i)
    EXPECT_LE(traj[i].u[0], traj[i - 1].u[0] + 1e-12);
}

TEST(DensityOde, RejectsBadTruncation) {
  HomogeneousModel m;
  EXPECT_THROW((void)integrate_density_ode(m, 0, 10.0, 0.1, 2),
               std::invalid_argument);
}

TEST(JumpSimulator, MeanTracksOdePrediction) {
  // Average several realizations: E[S(t)] = (1/N) e^{lambda t} (Eq. 4).
  JumpSimConfig config;
  config.population = 3000;
  config.lambda = 0.05;
  config.t_end = 120.0;
  config.samples = 7;
  constexpr int realizations = 12;

  std::vector<double> mean_at(config.samples, 0.0);
  std::vector<double> times(config.samples, 0.0);
  for (int r = 0; r < realizations; ++r) {
    config.seed = 100 + static_cast<std::uint64_t>(r);
    const auto samples = run_jump_simulation(config);
    for (std::size_t i = 0; i < samples.size(); ++i) {
      mean_at[i] += samples[i].mean_paths / realizations;
      times[i] = samples[i].t;
    }
  }
  HomogeneousModel m;
  m.lambda = config.lambda;
  m.population = config.population;
  for (std::size_t i = 0; i < mean_at.size(); ++i) {
    const double expected = m.mean_paths(times[i]);
    // The averaged realizations should bracket the closed form within a
    // factor ~2 plus an absolute floor (the explosion front is the
    // highest-variance quantity in the whole model).
    EXPECT_LT(mean_at[i], expected * 2.5 + 0.01) << "t=" << times[i];
    EXPECT_GT(mean_at[i], expected / 2.5 - 0.01) << "t=" << times[i];
  }
}

TEST(JumpSimulator, LowDensitySumsToAtMostOne) {
  JumpSimConfig config;
  config.population = 500;
  config.lambda = 0.05;
  config.t_end = 60.0;
  config.samples = 5;
  config.seed = 5;
  const auto samples = run_jump_simulation(config);
  for (const auto& s : samples) {
    double sum = 0.0;
    for (const double d : s.low_density) sum += d;
    EXPECT_LE(sum, 1.0 + 1e-12);
    EXPECT_GE(sum, 0.0);
  }
}

TEST(JumpSimulator, InitialStateOnePathAtSource) {
  JumpSimConfig config;
  config.population = 100;
  config.lambda = 0.01;
  config.t_end = 1.0;
  config.samples = 2;
  config.seed = 7;
  const auto samples = run_jump_simulation(config);
  ASSERT_FALSE(samples.empty());
  EXPECT_NEAR(samples[0].mean_paths, 1.0 / 100.0, 1e-12);
  EXPECT_NEAR(samples[0].low_density[1], 1.0 / 100.0, 1e-12);
  EXPECT_NEAR(samples[0].low_density[0], 99.0 / 100.0, 1e-12);
}

TEST(JumpSimulator, GoldenSeedTrajectory) {
  // Pinned full trajectory of a fixed seed (captured before the sampling
  // fixes landed; the early-exit fix must not change emitted samples).
  JumpSimConfig config;
  config.population = 300;
  config.lambda = 0.05;
  config.t_end = 50.0;
  config.samples = 6;
  config.seed = 11;
  const auto samples = run_jump_simulation(config);
  ASSERT_EQ(samples.size(), 6u);
  const double golden_t[] = {0.0, 10.0, 20.0, 30.0, 40.0, 50.0};
  const double golden_mean[] = {0.0033333333333333335, 0.01,
                                0.013333333333333334, 0.013333333333333334,
                                0.02, 0.033333333333333333};
  const double golden_var[] = {0.0033222222222221843, 0.009900000000000032,
                               0.013155555555555511, 0.013155555555555511,
                               0.019599999999999954, 0.03222222222222236};
  const double golden_u0[] = {0.9966666666666667, 0.98999999999999999,
                              0.98666666666666669, 0.98666666666666669,
                              0.97999999999999998, 0.96666666666666667};
  for (std::size_t i = 0; i < samples.size(); ++i) {
    EXPECT_DOUBLE_EQ(samples[i].t, golden_t[i]) << i;
    EXPECT_DOUBLE_EQ(samples[i].mean_paths, golden_mean[i]) << i;
    EXPECT_DOUBLE_EQ(samples[i].variance_paths, golden_var[i]) << i;
    EXPECT_DOUBLE_EQ(samples[i].low_density[0], golden_u0[i]) << i;
  }
}

TEST(JumpSimulator, SampleTimesNeverExceedHorizon) {
  // Regression for the trailing catch-up loop: the sample grid's
  // floating-point accumulation used to stamp the final sample past
  // t_end (e.g. t_end = 0.3, samples = 8 produced t = 0.30000000000000004).
  const struct {
    double t_end;
    std::size_t samples;
  } cases[] = {{0.3, 8}, {0.7, 13}, {1.2, 8}, {5.6, 13}, {58.8, 50}};
  for (const auto& c : cases) {
    JumpSimConfig config;
    config.population = 50;
    config.lambda = 1.0;
    config.t_end = c.t_end;
    config.samples = c.samples;
    config.seed = 3;
    const auto samples = run_jump_simulation(config);
    ASSERT_EQ(samples.size(), c.samples);
    double previous = -1.0;
    for (const auto& s : samples) {
      EXPECT_LE(s.t, config.t_end) << "t_end=" << c.t_end;
      EXPECT_GE(s.t, previous);
      previous = s.t;
    }
  }
}

TEST(JumpSimulator, ZeroSamplesYieldEmptyTrajectory) {
  JumpSimConfig config;
  config.population = 50;
  config.t_end = 10.0;
  config.samples = 0;
  EXPECT_TRUE(run_jump_simulation(config).empty());
}

TEST(JumpSimulator, DeterministicInSeed) {
  JumpSimConfig config;
  config.population = 300;
  config.t_end = 50.0;
  config.seed = 11;
  const auto a = run_jump_simulation(config);
  const auto b = run_jump_simulation(config);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_DOUBLE_EQ(a[i].mean_paths, b[i].mean_paths);
}

TEST(HeterogeneousMc, GoldenSeedResults) {
  // Pinned per-message results of a fixed seed (captured before the
  // population/message split and the NaN-sentinel change; both must
  // leave the single-stream serial path bit-identical).
  HeterogeneousMcConfig config;
  config.population = 60;
  config.max_rate = 0.15;
  config.t_end = 3000.0;
  config.k = 50;
  config.messages = 40;
  config.seed = 21;
  const auto results = run_heterogeneous_mc(config);
  ASSERT_EQ(results.size(), 40u);
  for (const auto& r : results) {
    EXPECT_TRUE(r.delivered);
    EXPECT_TRUE(r.exploded);
  }
  EXPECT_EQ(results[0].type, PairType::out_in);
  EXPECT_DOUBLE_EQ(results[0].t1, 56.761956367123375);
  EXPECT_DOUBLE_EQ(results[0].te, 29.514618004016725);
  EXPECT_EQ(results[1].type, PairType::in_in);
  EXPECT_DOUBLE_EQ(results[1].t1, 22.55041063058809);
  EXPECT_DOUBLE_EQ(results[1].te, 23.158815760475115);
  // Exploded on the delivering contact itself: a legitimate zero wait,
  // which the NaN sentinel now distinguishes from "never exploded".
  EXPECT_DOUBLE_EQ(results[7].t1, 64.414114886802835);
  EXPECT_DOUBLE_EQ(results[7].explosion_wait(), 0.0);
  EXPECT_EQ(results[10].type, PairType::out_out);
  EXPECT_DOUBLE_EQ(results[10].t1, 81.685470377563476);
  EXPECT_DOUBLE_EQ(results[39].t1, 31.556444592296245);
  EXPECT_DOUBLE_EQ(results[39].te, 30.101551928853624);
  std::size_t count[4] = {0, 0, 0, 0};
  for (const auto& r : results) ++count[static_cast<std::size_t>(r.type)];
  EXPECT_EQ(count[0], 13u);
  EXPECT_EQ(count[1], 8u);
  EXPECT_EQ(count[2], 14u);
  EXPECT_EQ(count[3], 5u);
}

TEST(HeterogeneousMc, UndeliveredMessagesCarryNaNSentinels) {
  // Regression for the 0.0 sentinel: a horizon too short for every
  // delivery must leave t1/te NaN, not a zero that poisons averages.
  HeterogeneousMcConfig config;
  config.population = 60;
  config.max_rate = 0.15;
  config.t_end = 20.0;
  config.k = 50;
  config.messages = 40;
  config.seed = 21;
  const auto results = run_heterogeneous_mc(config);
  std::size_t undelivered = 0;
  std::size_t unexploded = 0;
  for (const auto& r : results) {
    if (!r.delivered) {
      ++undelivered;
      EXPECT_TRUE(std::isnan(r.t1));
    } else {
      EXPECT_FALSE(std::isnan(r.first_arrival()));
      EXPECT_LT(r.first_arrival(), config.t_end);
    }
    if (!r.exploded)
      ++unexploded;
    else
      EXPECT_FALSE(std::isnan(r.explosion_wait()));
    EXPECT_EQ(std::isnan(r.te), !r.exploded);
  }
  // The config is engineered so the horizon truncates some messages.
  EXPECT_GT(undelivered, 0u);
  EXPECT_GT(unexploded, undelivered);
  EXPECT_LT(undelivered, results.size());
}

TEST(HeterogeneousMc, QuadrantOrderingHypotheses) {
  HeterogeneousMcConfig config;
  config.population = 100;
  config.max_rate = 0.12;
  config.t_end = 7200.0;
  config.k = 500;
  config.messages = 600;
  config.seed = 13;
  const auto results = run_heterogeneous_mc(config);
  ASSERT_EQ(results.size(), 600u);

  double t1_sum[4] = {0, 0, 0, 0};
  double te_sum[4] = {0, 0, 0, 0};
  std::size_t t1_n[4] = {0, 0, 0, 0};
  std::size_t te_n[4] = {0, 0, 0, 0};
  for (const auto& r : results) {
    const auto q = static_cast<std::size_t>(r.type);
    if (r.delivered) {
      t1_sum[q] += r.t1;
      ++t1_n[q];
    }
    if (r.exploded) {
      te_sum[q] += r.te;
      ++te_n[q];
    }
  }
  for (int q = 0; q < 4; ++q) {
    ASSERT_GT(t1_n[q], 10u) << "quadrant " << q;
    ASSERT_GT(te_n[q], 10u) << "quadrant " << q;
  }
  const auto t1_mean = [&](PairType t) {
    const auto q = static_cast<std::size_t>(t);
    return t1_sum[q] / static_cast<double>(t1_n[q]);
  };
  const auto te_mean = [&](PairType t) {
    const auto q = static_cast<std::size_t>(t);
    return te_sum[q] / static_cast<double>(te_n[q]);
  };
  // §5.2 hypotheses: T1 driven by the source class, TE by the destination.
  EXPECT_LT(t1_mean(PairType::in_in), t1_mean(PairType::out_in));
  EXPECT_LT(t1_mean(PairType::in_out), t1_mean(PairType::out_out));
  EXPECT_LT(te_mean(PairType::in_in), te_mean(PairType::in_out));
  EXPECT_LT(te_mean(PairType::out_in), te_mean(PairType::out_out));
}

// Parameterized sweep: the ODE mean matches e^{lambda t} for a range of
// lambdas and populations (truncation chosen so the sink stays empty).
class LambdaSweep
    : public ::testing::TestWithParam<std::tuple<double, std::size_t>> {};

TEST_P(LambdaSweep, OdeMeanMatchesClosedForm) {
  const auto [lambda, population] = GetParam();
  HomogeneousModel m;
  m.lambda = lambda;
  m.population = population;
  // Integrate to the time where E[S] ~ 30/N so the 256-truncation holds.
  const double t_end = std::log(30.0) / lambda;
  const auto traj = integrate_density_ode(m, 256, t_end, 0.02 / lambda, 5);
  for (const auto& p : traj) {
    const double expected = m.mean_paths(p.t);
    EXPECT_NEAR(p.mean, expected, expected * 0.02 + 1e-9)
        << "lambda=" << lambda << " N=" << population << " t=" << p.t;
    EXPECT_NEAR(total_mass(p.u), 1.0, 1e-8);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Rates, LambdaSweep,
    ::testing::Combine(::testing::Values(0.01, 0.05, 0.2),
                       ::testing::Values<std::size_t>(50, 500)));

TEST(HeterogeneousMc, PairTypeNames) {
  EXPECT_STREQ(pair_type_name(PairType::in_in), "in-in");
  EXPECT_STREQ(pair_type_name(PairType::out_out), "out-out");
}

}  // namespace
}  // namespace psn::model
