// Concurrency stress suite: the tests whose job is to put every lock in
// the engine and the serve layer under real contention. They pass as
// ordinary correctness tests (build-once probes, response counts), but
// their real audience is the TSan lane (`cmake --preset build-tsan`,
// .github/workflows/ci.yml `tsan` job): each test is shaped so that a
// missing acquisition in ScenarioContextCache, ObservationStore, or
// SweepService turns into a data-race report instead of a silent
// maybe-flake. The static half of the same discipline is the Clang
// Thread Safety annotations (util/thread_annotations.hpp, DESIGN.md §12).

#include <gtest/gtest.h>

#include <atomic>
#include <barrier>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "psn/core/dataset.hpp"
#include "psn/engine/scenario_context.hpp"
#include "psn/engine/thread_pool.hpp"
#include "psn/forward/algorithm.hpp"
#include "psn/forward/algorithm_registry.hpp"
#include "psn/serve/json.hpp"
#include "psn/serve/request.hpp"
#include "psn/serve/service.hpp"
#include "psn/synth/pairwise_poisson.hpp"
#include "psn/trace/trace_stats.hpp"

namespace psn {
namespace {

// Small but contact-dense dataset: enough structure that graph and
// snapshot builds take real time (widening the race window), small
// enough that a stress test stays in the sub-second range per build.
core::Dataset stress_dataset(std::uint64_t seed, const std::string& name) {
  synth::PairwisePoissonConfig config;
  config.num_nodes = 24;
  config.t_max = 2700.0;
  config.mean_node_rate = 0.08;
  config.seed = seed;
  auto generated = synth::generate_pairwise_poisson(config);

  core::Dataset dataset;
  dataset.name = name;
  dataset.trace = std::move(generated.trace);
  dataset.rates = trace::classify_rates(dataset.trace);
  dataset.message_horizon = 1800.0;
  dataset.ground_truth_rates = std::move(generated.node_rates);
  return dataset;
}

engine::Scenario owned_scenario(std::uint64_t seed, const std::string& name) {
  engine::Scenario scenario;
  scenario.name = name;
  scenario.dataset =
      std::make_shared<const core::Dataset>(stress_dataset(seed, name));
  return scenario;
}

// Satellite of the thread-safety tentpole: N threads race
// adopt_shared_snapshot on a COLD scenario — every thread holds its own
// FRESH instance, asks the context's ObservationStore for the shared
// snapshot, and adopts it. The build-count probe (the atomic wrapped
// around the build callback) must read exactly 1: the double-checked
// per-key slot lock in ObservationStore::get_or_build collapses all N
// builders into one. Under TSan this additionally proves the snapshot
// publication itself is race-free (the losing threads read the pointer
// the winner published).
TEST(ObservationStoreStress, RacingAdoptersObserveExactlyOneBuild) {
  auto& cache = engine::ScenarioContextCache::instance();
  const auto scenario = owned_scenario(211, "stress-adopt-cold");
  const auto context = cache.acquire(scenario);
  ASSERT_NE(context, nullptr);
  ASSERT_NE(context->observations, nullptr);

  constexpr std::size_t kThreads = 8;
  constexpr int kRounds = 4;
  for (int round = 0; round < kRounds; ++round) {
    // Per-round key: each round starts from a cold slot again.
    const std::string round_suffix = "#round" + std::to_string(round);
    std::atomic<int> builds{0};
    std::atomic<int> built_flags{0};
    std::vector<engine::ObservationStore::SnapshotPtr> adopted(kThreads);
    std::barrier start(kThreads);

    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (std::size_t t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        const auto algorithm = forward::make_algorithm("FRESH");
        const std::string key =
            algorithm->shared_snapshot_key() + round_suffix;
        start.arrive_and_wait();
        const auto [snapshot, built] =
            context->observations->get_or_build(key, [&] {
              builds.fetch_add(1, std::memory_order_relaxed);
              return algorithm->build_shared_snapshot(
                  *context->graph, context->dataset->trace);
            });
        if (built) built_flags.fetch_add(1, std::memory_order_relaxed);
        algorithm->adopt_shared_snapshot(snapshot);
        adopted[t] = snapshot;
      });
    }
    for (auto& thread : threads) thread.join();

    EXPECT_EQ(builds.load(), 1) << "round " << round;
    EXPECT_EQ(built_flags.load(), 1) << "round " << round;
    for (std::size_t t = 1; t < kThreads; ++t)
      EXPECT_EQ(adopted[t], adopted[0])
          << "thread " << t << " adopted a different snapshot";
  }
}

// Distinct keys must NOT serialize on one another: two key families
// racing concurrently still build exactly once per key. Guards against
// the "fix" of replacing the per-slot mutex with the store-wide one.
TEST(ObservationStoreStress, DistinctKeysBuildIndependently) {
  struct TinySnapshot final : forward::ObservationSnapshot {
    [[nodiscard]] std::uint64_t bytes() const override { return 8; }
  };
  engine::ObservationStore store;
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kKeys = 4;
  std::atomic<int> builds{0};
  std::barrier start(kThreads);

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      start.arrive_and_wait();
      const std::string key = "key-" + std::to_string(t % kKeys);
      (void)store.get_or_build(key, [&] {
        builds.fetch_add(1, std::memory_order_relaxed);
        return std::make_shared<const TinySnapshot>();
      });
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(builds.load(), static_cast<int>(kKeys));
}

// N threads race ScenarioContextCache::acquire on a cold scenario: the
// per-entry lock must collapse them into one graph build, and every
// caller must get the same context instance.
TEST(ScenarioCacheStress, RacingAcquirersShareOneBuild) {
  auto& cache = engine::ScenarioContextCache::instance();
  constexpr std::size_t kThreads = 8;
  for (int round = 0; round < 4; ++round) {
    const auto scenario = owned_scenario(
        301 + static_cast<std::uint64_t>(round),
        "stress-acquire-" + std::to_string(round));
    const auto builds_before = cache.graphs_built();
    std::vector<std::shared_ptr<const engine::ScenarioContext>> got(kThreads);
    std::barrier start(kThreads);

    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (std::size_t t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        start.arrive_and_wait();
        got[t] = cache.acquire(scenario);
      });
    }
    for (auto& thread : threads) thread.join();

    EXPECT_EQ(cache.graphs_built(), builds_before + 1) << "round " << round;
    for (std::size_t t = 1; t < kThreads; ++t)
      EXPECT_EQ(got[t], got[0]);
    (void)cache.evict(scenario.name);
  }
}

// The TSan centerpiece: concurrent serve traffic against a cache budget
// far too small to retain anything, so every request window races
// eviction, rebuild, and snapshot adoption while admin evict/clear/stats
// requests punch the cache from the side. Functionally this only asserts
// that every request is answered ok; under TSan it sweeps the whole
// service + cache + store lock graph under maximum churn.
TEST(ServeStress, CacheChurnUnderConcurrentRequestsAndAdmin) {
  auto& cache = engine::ScenarioContextCache::instance();
  const auto budget_before = cache.stats().budget_bytes;

  {
    serve::ServiceConfig config;
    config.threads = 4;
    config.batch_window_seconds = 0.0005;
    config.cache_budget_bytes = 4 * 1024;  // nothing fits: retention churns.
    serve::SweepService service(config);

    constexpr std::size_t kClients = 4;
    constexpr int kRequestsPerClient = 6;
    std::atomic<int> ok{0};
    std::atomic<int> failed{0};
    std::barrier start(kClients + 1);

    const auto count_response = [&](const serve::Json& response) {
      const serve::Json& ok_field = response.at("ok");
      if (ok_field.is_bool() && ok_field.as_bool())
        ok.fetch_add(1, std::memory_order_relaxed);
      else
        failed.fetch_add(1, std::memory_order_relaxed);
    };

    std::vector<std::thread> clients;
    clients.reserve(kClients + 1);
    for (std::size_t c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        start.arrive_and_wait();
        for (int i = 0; i < kRequestsPerClient; ++i) {
          serve::Request request;
          request.id = "c" + std::to_string(c) + "-" + std::to_string(i);
          request.family = serve::Family::kForwarding;
          // Two scenarios so eviction always has a victim that the next
          // request wants back; alternate per client and per iteration.
          request.forwarding.scenario =
              ((c + static_cast<std::size_t>(i)) % 2 == 0)
                  ? "conference_small"
                  : "random_waypoint";
          request.forwarding.algorithms = {"Epidemic", "FRESH"};
          request.forwarding.runs = 1;
          request.forwarding.master_seed = 7 + static_cast<std::uint64_t>(i);
          service.enqueue(std::move(request), count_response);
        }
      });
    }
    // Admin chaos monkey: evict/clear/stats while the sweeps run.
    clients.emplace_back([&] {
      start.arrive_and_wait();
      const serve::AdminCommand commands[] = {serve::AdminCommand::kStats,
                                              serve::AdminCommand::kEvict,
                                              serve::AdminCommand::kClear};
      for (int i = 0; i < 9; ++i) {
        serve::Request request;
        request.id = "admin-" + std::to_string(i);
        request.family = serve::Family::kAdmin;
        request.admin.command = commands[i % 3];
        if (request.admin.command == serve::AdminCommand::kEvict)
          request.admin.scenario = "conference_small";
        service.enqueue(std::move(request), count_response);
      }
    });
    for (auto& client : clients) client.join();
    service.drain();

    EXPECT_EQ(ok.load(), static_cast<int>(kClients) * kRequestsPerClient + 9);
    EXPECT_EQ(failed.load(), 0);

    const auto stats = service.stats();
    EXPECT_EQ(stats.requests,
              static_cast<std::uint64_t>(kClients) * kRequestsPerClient + 9);
    EXPECT_EQ(stats.responses_ok, stats.requests);
  }

  // The service shrank the process-wide cache; put the budget back so
  // later suites (and reruns in one process) see the default behavior.
  cache.set_budget_bytes(budget_before);
  cache.clear();
}

// Exceptions crossing the pool: parallel_for must rethrow exactly one of
// the shard exceptions on the caller with the pool healthy afterwards,
// round after round, under worker contention.
TEST(ThreadPoolStress, ParallelForRethrowLeavesPoolHealthy) {
  engine::ThreadPool pool(4);
  const util::ParallelFor parallel = engine::parallel_for(pool);
  for (int round = 0; round < 16; ++round) {
    std::atomic<int> executed{0};
    try {
      parallel(64, [&](std::size_t shard) {
        executed.fetch_add(1, std::memory_order_relaxed);
        if (shard % 7 == 3) throw std::runtime_error("shard failure");
      });
      FAIL() << "parallel_for swallowed the shard exception";
    } catch (const std::runtime_error& error) {
      EXPECT_STREQ(error.what(), "shard failure");
    }
    // The pool must still execute work after the failed round.
    std::atomic<int> after{0};
    parallel(16, [&](std::size_t) {
      after.fetch_add(1, std::memory_order_relaxed);
    });
    EXPECT_EQ(after.load(), 16) << "round " << round;
  }
}

}  // namespace
}  // namespace psn
