// Tests for psn::forward metrics aggregation and pair-type splitting.

#include <gtest/gtest.h>

#include "psn/forward/metrics.hpp"

namespace psn::forward {
namespace {

::psn::forward::Run make_run(std::vector<Message> msgs, std::vector<MessageOutcome> outs) {
  ::psn::forward::Run run;
  run.messages = std::move(msgs);
  run.result.outcomes = std::move(outs);
  return run;
}

TEST(Metrics, AggregateAcrossRuns) {
  std::vector<::psn::forward::Run> runs;
  runs.push_back(make_run({{0, 0, 1, 0.0}, {1, 1, 2, 0.0}},
                          {{true, 10.0, 1}, {false, 0.0, 0}}));
  runs.push_back(make_run({{0, 0, 1, 0.0}, {1, 1, 2, 0.0}},
                          {{true, 30.0, 1}, {true, 20.0, 1}}));
  const auto perf = aggregate_performance("X", runs);
  EXPECT_EQ(perf.algorithm, "X");
  EXPECT_EQ(perf.messages, 4u);
  EXPECT_EQ(perf.delivered, 3u);
  EXPECT_DOUBLE_EQ(perf.success_rate, 0.75);
  EXPECT_DOUBLE_EQ(perf.average_delay, 20.0);
}

TEST(Metrics, EmptyRunsSafe) {
  const auto perf = aggregate_performance("X", {});
  EXPECT_EQ(perf.messages, 0u);
  EXPECT_DOUBLE_EQ(perf.success_rate, 0.0);
  EXPECT_DOUBLE_EQ(perf.average_delay, 0.0);
}

TEST(Metrics, PooledDelays) {
  std::vector<::psn::forward::Run> runs;
  runs.push_back(make_run({{0, 0, 1, 0.0}}, {{true, 5.0, 1}}));
  runs.push_back(make_run({{0, 0, 1, 0.0}}, {{false, 0.0, 0}}));
  runs.push_back(make_run({{0, 0, 1, 0.0}}, {{true, 15.0, 1}}));
  const auto delays = pooled_delays(runs);
  ASSERT_EQ(delays.size(), 2u);
  EXPECT_DOUBLE_EQ(delays[0], 5.0);
  EXPECT_DOUBLE_EQ(delays[1], 15.0);
}

trace::RateClassification fake_rc() {
  // Nodes 0,1 are 'in'; nodes 2,3 are 'out'.
  trace::RateClassification rc;
  rc.rates = {10.0, 9.0, 1.0, 0.5};
  rc.median_rate = 5.0;
  rc.classes = {trace::RateClass::in_node, trace::RateClass::in_node,
                trace::RateClass::out_node, trace::RateClass::out_node};
  return rc;
}

TEST(Metrics, PairTypeOfQuadrants) {
  const auto rc = fake_rc();
  EXPECT_EQ(pair_type_of({0, 0, 1, 0.0}, rc), 0u);  // in-in
  EXPECT_EQ(pair_type_of({0, 0, 2, 0.0}, rc), 1u);  // in-out
  EXPECT_EQ(pair_type_of({0, 2, 1, 0.0}, rc), 2u);  // out-in
  EXPECT_EQ(pair_type_of({0, 2, 3, 0.0}, rc), 3u);  // out-out
}

TEST(Metrics, PairTypeLabels) {
  EXPECT_STREQ(pair_type_label(0), "in-in");
  EXPECT_STREQ(pair_type_label(1), "in-out");
  EXPECT_STREQ(pair_type_label(2), "out-in");
  EXPECT_STREQ(pair_type_label(3), "out-out");
}

TEST(Metrics, SplitByPairType) {
  const auto rc = fake_rc();
  std::vector<::psn::forward::Run> runs;
  runs.push_back(make_run(
      {
          {0, 0, 1, 0.0},  // in-in, delivered 10
          {1, 0, 2, 0.0},  // in-out, failed
          {2, 2, 1, 0.0},  // out-in, delivered 30
          {3, 3, 2, 0.0},  // out-out, delivered 50
      },
      {{true, 10.0, 1}, {false, 0.0, 0}, {true, 30.0, 1}, {true, 50.0, 1}}));
  const auto split = split_by_pair_type("X", runs, rc);
  EXPECT_DOUBLE_EQ(split.per_type[0].success_rate, 1.0);
  EXPECT_DOUBLE_EQ(split.per_type[0].average_delay, 10.0);
  EXPECT_DOUBLE_EQ(split.per_type[1].success_rate, 0.0);
  EXPECT_DOUBLE_EQ(split.per_type[2].average_delay, 30.0);
  EXPECT_DOUBLE_EQ(split.per_type[3].average_delay, 50.0);
  EXPECT_EQ(split.per_type[0].messages, 1u);
}

TEST(Metrics, SplitRejectsMismatchedRun) {
  const auto rc = fake_rc();
  std::vector<::psn::forward::Run> runs;
  runs.push_back(make_run({{0, 0, 1, 0.0}}, {}));
  EXPECT_THROW((void)split_by_pair_type("X", runs, rc),
               std::invalid_argument);
}

}  // namespace
}  // namespace psn::forward
