// Cross-module property tests on randomized traces (parameterized over
// generator seeds). These check the deep invariants that tie the repo
// together:
//
//  1. Epidemic simulation, the reachability sweep, and the path
//     enumerator's first delivery all agree on the optimal duration
//     T(sigma, delta, t1) — three independent implementations of §4's
//     optimality notion.
//  2. Every recorded enumerated path is structurally valid.
//  3. T_n is non-decreasing; no algorithm beats Epidemic.

#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "psn/forward/algorithm_registry.hpp"
#include "psn/forward/algorithms/epidemic.hpp"
#include "psn/forward/simulator.hpp"
#include "psn/graph/reachability.hpp"
#include "psn/paths/enumerator.hpp"
#include "psn/synth/pairwise_poisson.hpp"
#include "psn/util/rng.hpp"

namespace psn {
namespace {

using forward::Message;
using graph::NodeId;
using graph::Seconds;

struct RandomScenario {
  trace::ContactTrace trace;
  graph::SpaceTimeGraph graph;

  explicit RandomScenario(std::uint64_t seed)
      : trace(make_trace(seed)), graph(trace, 10.0) {}

  static trace::ContactTrace make_trace(std::uint64_t seed) {
    synth::PairwisePoissonConfig config;
    config.num_nodes = 24;
    config.t_max = 1800.0;
    config.mean_node_rate = 0.05;
    config.mean_contact_duration = 40.0;
    config.seed = seed;
    return generate_pairwise_poisson(config).trace;
  }
};

class SeededCrossCheck : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SeededCrossCheck, EpidemicEqualsReachabilityEqualsEnumeratorT1) {
  const RandomScenario scenario(GetParam());
  util::Rng rng(GetParam() * 33 + 1);

  paths::EnumeratorConfig config;
  config.k = 200;
  config.record_paths = false;
  const paths::KPathEnumerator enumerator(scenario.graph, config);

  for (int trial = 0; trial < 12; ++trial) {
    const auto src =
        static_cast<NodeId>(rng.uniform_index(scenario.trace.num_nodes()));
    auto dst = static_cast<NodeId>(
        rng.uniform_index(scenario.trace.num_nodes() - 1));
    if (dst >= src) ++dst;
    const Seconds t0 = rng.uniform(0.0, 1200.0);

    // (a) Reachability sweep.
    const auto sweep =
        graph::optimal_duration(scenario.graph, src, dst, t0);

    // (b) Epidemic simulation.
    forward::EpidemicForwarding epidemic;
    const std::vector<Message> one_message = {Message{0, src, dst, t0}};
    forward::SimulationRequest request;
    request.algorithm = &epidemic;
    request.graph = &scenario.graph;
    request.trace = &scenario.trace;
    request.messages = &one_message;
    const auto sim = forward::simulate(request);
    std::optional<Seconds> epidemic_delay;
    if (sim.outcomes[0].delivered) epidemic_delay = sim.outcomes[0].delay;

    // (c) Enumerator's first delivery.
    const auto enumerated = enumerator.enumerate(src, dst, t0);
    const auto t1 = enumerated.optimal_duration();

    ASSERT_EQ(sweep.has_value(), epidemic_delay.has_value())
        << "src=" << src << " dst=" << dst << " t0=" << t0;
    ASSERT_EQ(sweep.has_value(), t1.has_value())
        << "src=" << src << " dst=" << dst << " t0=" << t0;
    if (sweep.has_value()) {
      EXPECT_DOUBLE_EQ(*sweep, *epidemic_delay)
          << "src=" << src << " dst=" << dst << " t0=" << t0;
      EXPECT_DOUBLE_EQ(*sweep, *t1)
          << "src=" << src << " dst=" << dst << " t0=" << t0;
    }
  }
}

TEST_P(SeededCrossCheck, EnumeratedPathsAreValidAndOrdered) {
  const RandomScenario scenario(GetParam());
  util::Rng rng(GetParam() * 77 + 5);

  paths::EnumeratorConfig config;
  config.k = 100;
  config.record_paths = true;
  const paths::KPathEnumerator enumerator(scenario.graph, config);

  for (int trial = 0; trial < 6; ++trial) {
    const auto src =
        static_cast<NodeId>(rng.uniform_index(scenario.trace.num_nodes()));
    auto dst = static_cast<NodeId>(
        rng.uniform_index(scenario.trace.num_nodes() - 1));
    if (dst >= src) ++dst;
    const auto r = enumerator.enumerate(src, dst, rng.uniform(0.0, 900.0));

    // Deliveries past the per-step record cap are counted but not
    // materialized (see enumerator.cpp), so not every record carries a
    // path; every materialized path must be structurally valid, and a
    // delivered message must have at least one.
    Seconds prev_arrival = 0.0;
    std::size_t materialized = 0;
    for (const auto& d : r.deliveries) {
      EXPECT_GE(d.arrival, prev_arrival);
      prev_arrival = d.arrival;
      EXPECT_GE(d.count, 1u);
      if (!d.path.valid()) continue;
      ++materialized;
      const auto seq = d.path.sequence();
      EXPECT_TRUE(paths::is_structurally_valid(seq, scenario.graph, src));
      EXPECT_EQ(seq.back().first, dst);
      EXPECT_EQ(seq.size(), static_cast<std::size_t>(d.hops) + 1);
    }
    if (r.delivered()) {
      EXPECT_GE(materialized, 1u);
    }
  }
}

TEST_P(SeededCrossCheck, NoAlgorithmBeatsEpidemic) {
  const RandomScenario scenario(GetParam());

  // A small shared workload.
  util::Rng rng(GetParam() * 101 + 9);
  std::vector<Message> messages;
  for (std::uint32_t i = 0; i < 40; ++i) {
    const auto src =
        static_cast<NodeId>(rng.uniform_index(scenario.trace.num_nodes()));
    auto dst = static_cast<NodeId>(
        rng.uniform_index(scenario.trace.num_nodes() - 1));
    if (dst >= src) ++dst;
    messages.push_back(Message{i, src, dst, rng.uniform(0.0, 1200.0)});
  }

  forward::EpidemicForwarding epidemic;
  forward::SimulationRequest request;
  request.graph = &scenario.graph;
  request.trace = &scenario.trace;
  request.messages = &messages;
  request.algorithm = &epidemic;
  const auto upper = forward::simulate(request);

  for (auto& alg : forward::make_extended_algorithms()) {
    request.algorithm = alg.get();
    const auto r = forward::simulate(request);
    for (std::size_t i = 0; i < messages.size(); ++i) {
      if (r.outcomes[i].delivered) {
        // Anything delivered must also be delivered by Epidemic, no later.
        ASSERT_TRUE(upper.outcomes[i].delivered)
            << alg->name() << " message " << i;
        EXPECT_LE(upper.outcomes[i].delay, r.outcomes[i].delay + 1e-9)
            << alg->name() << " message " << i;
      }
    }
    EXPECT_LE(r.success_rate(), upper.success_rate() + 1e-12) << alg->name();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeededCrossCheck,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

// The T1 agreement must hold at every discretization, not just 10 s.
class DeltaCrossCheck
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, double>> {};

TEST_P(DeltaCrossCheck, SweepMatchesEnumeratorAtAnyDelta) {
  const auto [seed, delta] = GetParam();
  const auto trace = RandomScenario::make_trace(seed);
  const graph::SpaceTimeGraph g(trace, delta);

  paths::EnumeratorConfig config;
  config.k = 50;
  config.record_paths = false;
  const paths::KPathEnumerator enumerator(g, config);

  util::Rng rng(seed * 7 + 3);
  for (int trial = 0; trial < 8; ++trial) {
    const auto src = static_cast<NodeId>(rng.uniform_index(trace.num_nodes()));
    auto dst =
        static_cast<NodeId>(rng.uniform_index(trace.num_nodes() - 1));
    if (dst >= src) ++dst;
    const Seconds t0 = rng.uniform(0.0, 1000.0);

    const auto sweep = graph::optimal_duration(g, src, dst, t0);
    const auto t1 = enumerator.enumerate(src, dst, t0).optimal_duration();
    ASSERT_EQ(sweep.has_value(), t1.has_value())
        << "delta=" << delta << " src=" << src << " dst=" << dst;
    if (sweep.has_value()) {
      EXPECT_DOUBLE_EQ(*sweep, *t1) << "delta=" << delta;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    DeltaSweep, DeltaCrossCheck,
    ::testing::Combine(::testing::Values<std::uint64_t>(4, 9),
                       ::testing::Values(2.0, 5.0, 10.0, 30.0, 60.0)));

}  // namespace
}  // namespace psn
