// Tests for psn::engine: the thread pool, plan expansion / seed streams,
// the result store, and — the load-bearing property — determinism of the
// sweep under parallelism: the same plan must produce bit-identical
// aggregated metrics at 1, 2, and 8 threads.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "psn/core/dataset.hpp"
#include "psn/core/forwarding_study.hpp"
#include "psn/engine/result_store.hpp"
#include "psn/engine/run_spec.hpp"
#include "psn/engine/scenario_context.hpp"
#include "psn/engine/scenario_registry.hpp"
#include "psn/engine/sweep.hpp"
#include "psn/engine/thread_pool.hpp"
#include "psn/forward/algorithm_registry.hpp"
#include "psn/synth/pairwise_poisson.hpp"
#include "psn/trace/trace_stats.hpp"

namespace psn::engine {
namespace {

// A small but non-trivial dataset: 24 nodes, 45 minutes, heterogeneous
// weights so the pair-type split is exercised.
core::Dataset small_dataset(std::uint64_t seed) {
  synth::PairwisePoissonConfig config;
  config.num_nodes = 24;
  config.t_max = 2700.0;
  config.mean_node_rate = 0.08;
  config.seed = seed;
  auto generated = synth::generate_pairwise_poisson(config);

  core::Dataset dataset;
  dataset.name = "engine-test";
  dataset.trace = std::move(generated.trace);
  dataset.rates = trace::classify_rates(dataset.trace);
  dataset.message_horizon = 1800.0;
  dataset.ground_truth_rates = std::move(generated.node_rates);
  return dataset;
}

TEST(ThreadPool, RunsEveryTaskExactlyOnce) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  constexpr int kTasks = 200;
  for (int i = 0; i < kTasks; ++i)
    pool.submit([&counter] { ++counter; });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), kTasks);
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturns) {
  ThreadPool pool(2);
  pool.wait_idle();  // Must not deadlock.
  SUCCEED();
}

TEST(ThreadPool, ZeroThreadsClampedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
  std::atomic<int> counter{0};
  pool.submit([&counter] { ++counter; });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 1);
}

TEST(RunSpec, PlanExpandsFullCrossProduct) {
  const auto ds = small_dataset(11);
  PlanConfig config;
  config.runs = 3;
  const auto plan = make_plan({make_scenario(ds), make_scenario(ds)},
                              {"Epidemic", "FRESH", "Greedy"}, config);
  EXPECT_EQ(plan.total_runs(), 2u * 3u * 3u);
  // Linearization: scenario-major, then algorithm, then repetition.
  for (std::size_t s = 0; s < 2; ++s)
    for (std::size_t a = 0; a < 3; ++a)
      for (std::size_t r = 0; r < 3; ++r) {
        const RunSpec& spec = plan.runs[plan.slot(s, a, r)];
        EXPECT_EQ(spec.scenario, s);
        EXPECT_EQ(spec.algorithm, a);
        EXPECT_EQ(spec.run, r);
      }
}

TEST(RunSpec, SharedModeReproducesLegacyStudyStreams) {
  // The pre-engine forwarding study used seed + r*1000003 (workload) and
  // seed + r*7919 (simulator); the shared mode must preserve both so old
  // results stay reproducible.
  const std::uint64_t master = 7;
  for (std::size_t r = 0; r < 5; ++r) {
    EXPECT_EQ(workload_stream_seed(master, 0, r,
                                   SeedMode::kSharedAcrossScenarios),
              master + r * 1000003ULL);
    EXPECT_EQ(sim_stream_seed(master, 0, r, SeedMode::kSharedAcrossScenarios),
              master + r * 7919ULL);
    // And scenario index must not matter in shared mode.
    EXPECT_EQ(workload_stream_seed(master, 3, r,
                                   SeedMode::kSharedAcrossScenarios),
              workload_stream_seed(master, 0, r,
                                   SeedMode::kSharedAcrossScenarios));
  }
}

TEST(RunSpec, PerScenarioModeSeparatesStreams) {
  const std::uint64_t master = 7;
  EXPECT_EQ(workload_stream_seed(master, 0, 0, SeedMode::kPerScenario),
            master);  // scenario 0 keeps the legacy stream.
  EXPECT_NE(workload_stream_seed(master, 1, 0, SeedMode::kPerScenario),
            workload_stream_seed(master, 0, 0, SeedMode::kPerScenario));
  EXPECT_NE(workload_stream_seed(master, 1, 0, SeedMode::kPerScenario),
            workload_stream_seed(master, 2, 0, SeedMode::kPerScenario));
}

TEST(ResultStore, SlotAddressedAndComplete) {
  ResultStore store(3);
  EXPECT_FALSE(store.complete());
  for (std::size_t slot : {2u, 0u, 1u}) {  // out-of-order completion.
    RunRecord record;
    record.spec.run = slot;
    store.put(slot, std::move(record));
  }
  EXPECT_TRUE(store.complete());
  const auto records = store.records();
  for (std::size_t slot = 0; slot < 3; ++slot)
    EXPECT_EQ(records[slot].spec.run, slot);
}

TEST(ResultStore, DoubleWriteThrows) {
  ResultStore store(2);
  store.put(0, RunRecord{});
  EXPECT_THROW(store.put(0, RunRecord{}), std::logic_error);
  EXPECT_THROW(store.put(7, RunRecord{}), std::out_of_range);
}

TEST(Sweep, UnknownAlgorithmPropagatesError) {
  const auto ds = small_dataset(13);
  PlanConfig config;
  config.runs = 1;
  const auto plan =
      make_plan({make_scenario(ds)}, {"No Such Algorithm"}, config);
  SweepOptions options;
  options.threads = 2;
  EXPECT_THROW((void)run_sweep(plan, options), std::invalid_argument);
}

// The headline guarantee: bit-identical aggregated metrics at 1, 2, and 8
// threads for the same plan.
TEST(Sweep, DeterministicAcrossThreadCounts) {
  const auto ds = small_dataset(17);
  PlanConfig config;
  config.runs = 4;
  config.master_seed = 21;
  config.message_rate = 0.02;
  const auto plan = make_plan({make_scenario(ds)},
                              {"Epidemic", "FRESH", "Greedy"}, config);

  std::vector<SweepResult> results;
  for (const std::size_t threads : {1u, 2u, 8u}) {
    SweepOptions options;
    options.threads = threads;
    results.push_back(run_sweep(plan, options));
    EXPECT_EQ(results.back().threads, threads);
  }

  const auto& base = results.front();
  ASSERT_EQ(base.cells.size(), 3u);
  for (std::size_t i = 1; i < results.size(); ++i) {
    const auto& other = results[i];
    ASSERT_EQ(other.cells.size(), base.cells.size());
    for (std::size_t c = 0; c < base.cells.size(); ++c) {
      const auto& lhs = base.cells[c];
      const auto& rhs = other.cells[c];
      EXPECT_EQ(lhs.algorithm, rhs.algorithm);
      // Bit-identical, hence EXPECT_EQ on doubles — no tolerance.
      EXPECT_EQ(lhs.overall.success_rate, rhs.overall.success_rate);
      EXPECT_EQ(lhs.overall.average_delay, rhs.overall.average_delay);
      EXPECT_EQ(lhs.overall.messages, rhs.overall.messages);
      EXPECT_EQ(lhs.overall.delivered, rhs.overall.delivered);
      EXPECT_EQ(lhs.cost_per_message, rhs.cost_per_message);
      EXPECT_EQ(lhs.delays, rhs.delays);
      for (std::size_t t = 0; t < 4; ++t) {
        EXPECT_EQ(lhs.by_pair_type.per_type[t].success_rate,
                  rhs.by_pair_type.per_type[t].success_rate);
        EXPECT_EQ(lhs.by_pair_type.per_type[t].average_delay,
                  rhs.by_pair_type.per_type[t].average_delay);
      }
    }
  }
}

// Multi-scenario sweeps must be deterministic too, and per-scenario seed
// mode must actually change the workloads of later scenarios.
TEST(Sweep, MultiScenarioDeterminismAndSeedModes) {
  const auto ds_a = small_dataset(19);
  const auto ds_b = small_dataset(23);

  PlanConfig config;
  config.runs = 2;
  config.message_rate = 0.02;
  config.seed_mode = SeedMode::kPerScenario;
  const auto plan =
      make_plan({make_scenario(ds_a), make_scenario(ds_b)},
                {"Epidemic", "Greedy"}, config);

  SweepOptions serial;
  serial.threads = 1;
  SweepOptions wide;
  wide.threads = 8;
  const auto lhs = run_sweep(plan, serial);
  const auto rhs = run_sweep(plan, wide);
  ASSERT_EQ(lhs.cells.size(), 4u);
  for (std::size_t c = 0; c < lhs.cells.size(); ++c) {
    EXPECT_EQ(lhs.cells[c].overall.success_rate,
              rhs.cells[c].overall.success_rate);
    EXPECT_EQ(lhs.cells[c].overall.average_delay,
              rhs.cells[c].overall.average_delay);
    EXPECT_EQ(lhs.cells[c].delays, rhs.cells[c].delays);
  }
  // cell(s, a) indexing agrees with the flat layout.
  EXPECT_EQ(&lhs.cell(1, 1), &lhs.cells[3]);
}

TEST(ScenarioRegistry, UnknownNameErrorListsRegisteredScenarios) {
  // A typo'd scenario must be self-diagnosing: the error carries every
  // registered name, sourced from scenario_names().
  try {
    (void)make_scenario_by_name("no-such-scenario");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("no-such-scenario"), std::string::npos);
    for (const std::string& name : scenario_names())
      EXPECT_NE(what.find(name), std::string::npos) << name;
  }
}

TEST(ScenarioRegistry, DatasetsAreSharedWhileHeld) {
  // The registry memoizes datasets by name: while a holder keeps one
  // alive, repeated builds return the same object without regenerating.
  const auto held = make_scenario_by_name("town_128");
  const auto before = scenario_datasets_built();
  const auto again = make_scenario_by_name("town_128");
  EXPECT_EQ(scenario_datasets_built(), before);
  EXPECT_EQ(held.dataset.get(), again.dataset.get());
}

TEST(ScenarioRegistry, NamesAreBuildableAndUnknownThrows) {
  const auto names = scenario_names();
  ASSERT_GE(names.size(), 4u);
  EXPECT_THROW((void)make_scenario_by_name("no-such-scenario"),
               std::invalid_argument);
  // The small tiers build quickly; the owned dataset matches the name's
  // advertised population. (city_2048 is exercised by integration_test.)
  const auto small = make_scenario_by_name("conference_small");
  ASSERT_TRUE(small.dataset != nullptr);
  EXPECT_EQ(small.name, "conference_small");
  EXPECT_EQ(small.dataset->trace.num_nodes(), 98u);
  const auto town = make_scenario_by_name("town_128");
  EXPECT_EQ(town.dataset->trace.num_nodes(), 128u);
  EXPECT_FALSE(town.dataset->trace.empty());
}

TEST(ScenarioRegistry, RandomWaypointIsRegisteredAndBuildable) {
  // The random-waypoint mobility family was promoted from an ad-hoc
  // synth call into the registry alongside the sizing tiers.
  const auto names = scenario_names();
  EXPECT_NE(std::find(names.begin(), names.end(), "random_waypoint"),
            names.end());
  const auto scenario = make_scenario_by_name("random_waypoint");
  ASSERT_TRUE(scenario.dataset != nullptr);
  EXPECT_EQ(scenario.name, "random_waypoint");
  EXPECT_EQ(scenario.dataset->trace.num_nodes(), 40u);
  EXPECT_FALSE(scenario.dataset->trace.empty());
}

TEST(ScenarioRegistry, RepeatedBuildsAreIdentical) {
  const auto a = make_scenario_by_name("town_128");
  const auto b = make_scenario_by_name("town_128");
  ASSERT_EQ(a.dataset->trace.size(), b.dataset->trace.size());
  for (std::size_t i = 0; i < a.dataset->trace.size(); ++i)
    EXPECT_EQ(a.dataset->trace[i], b.dataset->trace[i]);
}

// The scale-up guarantee: a past-the-Bitset128-ceiling scenario (512
// nodes) sweeps bit-identically at 1 and 8 threads, epidemic plus a
// single-copy scheme, with no silent relay truncation.
TEST(Sweep, Campus512BitIdenticalAcrossThreadCounts) {
  const auto scenario = make_scenario_by_name("campus_512");
  ASSERT_EQ(scenario.dataset->trace.num_nodes(), 512u);

  PlanConfig config;
  config.runs = 2;
  config.master_seed = 17;
  config.message_rate = 0.005;  // ~36 messages per run keeps this quick.
  const auto plan = make_plan({scenario}, {"Epidemic", "FRESH"}, config);

  SweepOptions serial;
  serial.threads = 1;
  SweepOptions wide;
  wide.threads = 8;
  const auto lhs = run_sweep(plan, serial);
  const auto rhs = run_sweep(plan, wide);

  ASSERT_EQ(lhs.cells.size(), 2u);
  ASSERT_EQ(rhs.cells.size(), 2u);
  for (std::size_t c = 0; c < lhs.cells.size(); ++c) {
    const auto& a = lhs.cells[c];
    const auto& b = rhs.cells[c];
    EXPECT_EQ(a.algorithm, b.algorithm);
    // Bit-identical, hence EXPECT_EQ on doubles — no tolerance.
    EXPECT_EQ(a.overall.success_rate, b.overall.success_rate);
    EXPECT_EQ(a.overall.average_delay, b.overall.average_delay);
    EXPECT_EQ(a.overall.average_hops, b.overall.average_hops);
    EXPECT_EQ(a.overall.delivered, b.overall.delivered);
    EXPECT_EQ(a.cost_per_message, b.cost_per_message);
    EXPECT_EQ(a.delays, b.delays);
    EXPECT_EQ(a.truncated_relay_steps, b.truncated_relay_steps);
    EXPECT_EQ(a.truncated_relay_steps, 0u);
    EXPECT_EQ(a.run_walls.size(), config.runs);
  }
  // The flood must actually spread at this scale.
  EXPECT_GT(lhs.cells[0].overall.delivered, 0u);
}

// Bit-identical cell comparison (no tolerance on doubles).
void expect_cells_identical(const SweepResult& lhs, const SweepResult& rhs) {
  ASSERT_EQ(lhs.cells.size(), rhs.cells.size());
  for (std::size_t c = 0; c < lhs.cells.size(); ++c) {
    const auto& a = lhs.cells[c];
    const auto& b = rhs.cells[c];
    EXPECT_EQ(a.scenario, b.scenario);
    EXPECT_EQ(a.algorithm, b.algorithm);
    EXPECT_EQ(a.overall.messages, b.overall.messages);
    EXPECT_EQ(a.overall.delivered, b.overall.delivered);
    EXPECT_EQ(a.overall.success_rate, b.overall.success_rate);
    EXPECT_EQ(a.overall.average_delay, b.overall.average_delay);
    EXPECT_EQ(a.overall.average_hops, b.overall.average_hops);
    EXPECT_EQ(a.cost_per_message, b.cost_per_message);
    EXPECT_EQ(a.delays, b.delays);
    EXPECT_EQ(a.truncated_relay_steps, b.truncated_relay_steps);
    for (std::size_t t = 0; t < 4; ++t) {
      EXPECT_EQ(a.by_pair_type.per_type[t].success_rate,
                b.by_pair_type.per_type[t].success_rate);
      EXPECT_EQ(a.by_pair_type.per_type[t].average_delay,
                b.by_pair_type.per_type[t].average_delay);
    }
  }
}

TEST(ScenarioRegistry, ScaleTierNamesAreRegistered) {
  const auto names = scenario_names();
  for (const char* required :
       {"city_2048_diurnal", "metro_16k", "megacity_65k"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), required), names.end())
        << required << " missing from scenario_names()";
  }
}

TEST(ScenarioRegistry, DiurnalTierHasQuietHours) {
  // city_2048_diurnal interleaves 20-minute dead zones into the window;
  // its active-step index must show the gaps the sparse event timeline
  // skips (the always-on city tiers have edges in nearly every step).
  const auto scenario = make_scenario_by_name("city_2048_diurnal");
  ASSERT_TRUE(scenario.dataset != nullptr);
  EXPECT_EQ(scenario.dataset->trace.num_nodes(), 2048u);
  EXPECT_FALSE(scenario.dataset->trace.empty());
  const auto context = ScenarioContextCache::instance().acquire(scenario);
  ASSERT_GT(context->graph->num_steps(), 0u);
  // A third of the window is quiet (factor-0 modulation). Contacts that
  // *start* in an active segment still bleed into the quiet one —
  // exponential durations have long tails and scan quantization delays
  // starts — so the dead fraction is smaller than 1/3, but must be far
  // from the always-on tiers, whose every step carries edges.
  EXPECT_LT(context->graph->num_active_steps(),
            (87 * context->graph->num_steps()) / 100);
  EXPECT_GT(context->graph->num_active_steps(),
            context->graph->num_steps() / 2);
}

// The two simulator options run_sweep forwards — the flood-kernel choice
// and the intra-run fan-out — must never change results, only walls:
// the scalar kernel is the word kernel's oracle, and the fan-out shards
// per-message state that is disjoint by construction.
TEST(Sweep, FloodKernelAndIntraRunFanOutAreBitIdentical) {
  const auto scenario = make_scenario_by_name("town_128");
  PlanConfig config;
  config.runs = 2;
  config.master_seed = 17;
  config.message_rate = 0.01;
  const auto plan = make_plan({scenario}, {"Epidemic", "FRESH"}, config);

  SweepOptions word;
  word.threads = 2;
  SweepOptions scalar = word;
  scalar.flood_kernel = forward::FloodKernel::kScalar;
  SweepOptions fanout = word;
  fanout.intra_run_parallel = true;

  const auto w = run_sweep(plan, word);
  const auto s = run_sweep(plan, scalar);
  const auto f = run_sweep(plan, fanout);
  expect_cells_identical(w, s);
  expect_cells_identical(w, f);
  EXPECT_GT(w.cells[0].overall.delivered, 0u);
}

// Contention does not break the parallel determinism guarantee: a sweep
// with finite budgets, finite buffers (random eviction — the policy that
// consumes RNG draws), and TTLs is bit-identical at 1 and 8 threads,
// down to the traffic event counters.
TEST(Sweep, FiniteTrafficBitIdenticalAcrossThreadCounts) {
  const auto ds = small_dataset(29);
  PlanConfig config;
  config.runs = 3;
  config.master_seed = 5;
  config.message_rate = 0.05;
  config.traffic.contact_budget_bytes = 2;
  config.traffic.buffer_capacity_bytes = 3;
  config.traffic.eviction = forward::EvictionPolicy::kRandom;
  config.message_ttl = 900.0;
  const auto plan =
      make_plan({make_scenario(ds)}, {"Epidemic", "Spray+Wait"}, config);

  SweepOptions serial;
  serial.threads = 1;
  SweepOptions wide;
  wide.threads = 8;
  const auto lhs = run_sweep(plan, serial);
  const auto rhs = run_sweep(plan, wide);

  ASSERT_EQ(lhs.cells.size(), 2u);
  bool saw_traffic_events = false;
  for (std::size_t c = 0; c < lhs.cells.size(); ++c) {
    const auto& a = lhs.cells[c];
    const auto& b = rhs.cells[c];
    EXPECT_EQ(a.overall.success_rate, b.overall.success_rate);
    EXPECT_EQ(a.overall.average_delay, b.overall.average_delay);
    EXPECT_EQ(a.cost_per_message, b.cost_per_message);
    EXPECT_EQ(a.delays, b.delays);
    EXPECT_EQ(a.messages_offered, b.messages_offered);
    EXPECT_EQ(a.expirations, b.expirations);
    EXPECT_EQ(a.evictions, b.evictions);
    EXPECT_EQ(a.drops, b.drops);
    EXPECT_EQ(a.budget_blocked, b.budget_blocked);
    EXPECT_EQ(a.buffer_rejections, b.buffer_rejections);
    if (a.evictions > 0 || a.budget_blocked > 0) saw_traffic_events = true;
  }
  // The limits above are tight enough to bite on this dataset; a sweep
  // with zero contention events would be vacuous.
  EXPECT_TRUE(saw_traffic_events);
}

// The tentpole guarantee: run_sweep builds each cell's graph exactly once
// — one build per scenario regardless of algorithms, runs, or threads,
// and zero builds when a caller already holds the scenario's context.
TEST(Sweep, BuildsEachScenarioGraphExactlyOnce) {
  const auto ds = small_dataset(31);
  auto& cache = ScenarioContextCache::instance();
  PlanConfig config;
  config.runs = 3;
  config.message_rate = 0.02;
  const auto plan = make_plan({make_scenario(ds)},
                              {"Epidemic", "FRESH", "Greedy"}, config);

  // Cold cache: 9 runs on 8 threads perform exactly one graph build.
  {
    const auto before = cache.graphs_built();
    SweepOptions options;
    options.threads = 8;
    (void)run_sweep(plan, options);
    EXPECT_EQ(cache.graphs_built(), before + 1);
  }

  // Held context: further sweeps at any thread count build nothing.
  {
    const auto held = cache.acquire(plan.scenarios[0]);
    const auto before = cache.graphs_built();
    for (const std::size_t threads : {1u, 8u}) {
      SweepOptions options;
      options.threads = threads;
      (void)run_sweep(plan, options);
    }
    EXPECT_EQ(cache.graphs_built(), before);
    EXPECT_EQ(held->dataset.get(), plan.scenarios[0].dataset.get());
  }
}

TEST(ScenarioContextCache, SameScenarioYieldsSameContext) {
  const auto ds = small_dataset(37);
  const auto scenario = make_scenario(ds);
  auto& cache = ScenarioContextCache::instance();
  const auto a = cache.acquire(scenario);
  const auto before = cache.graphs_built();
  const auto b = cache.acquire(scenario);
  EXPECT_EQ(a.get(), b.get());
  EXPECT_EQ(cache.graphs_built(), before);
  // A different delta is a different context (and a fresh build).
  auto other = make_scenario(ds, 30.0);
  const auto c = cache.acquire(other);
  EXPECT_NE(c.get(), a.get());
  EXPECT_EQ(cache.graphs_built(), before + 1);
  EXPECT_EQ(c->graph->delta(), 30.0);
}

// The equivalence harness at sweep level: the sparse event timeline must
// reproduce the dense replay bit for bit on the infocom06 stand-in
// (conference_small) across the full paper algorithm matrix, at 1 and 8
// threads.
TEST(Sweep, SparseTimelineMatchesDenseOnInfocomMatrix) {
  const auto scenario = make_scenario_by_name("conference_small");
  PlanConfig config;
  config.runs = 2;
  config.master_seed = 7;
  config.message_rate = 0.01;
  const auto plan =
      make_plan({scenario}, forward::paper_algorithm_names(), config);

  for (const std::size_t threads : {1u, 8u}) {
    SweepOptions dense;
    dense.threads = threads;
    dense.replay = forward::ReplayMode::kDense;
    SweepOptions sparse;
    sparse.threads = threads;
    sparse.replay = forward::ReplayMode::kSparse;
    const auto lhs = run_sweep(plan, dense);
    const auto rhs = run_sweep(plan, sparse);
    expect_cells_identical(lhs, rhs);
  }
}

// Tier coverage for the same equivalence: town_128 and campus_512 (the
// sparse exponential-gap tiers the timeline refactor targets);
// conference_small is covered above and city_2048 by integration_test.
TEST(Sweep, SparseTimelineMatchesDenseAcrossScaleTiers) {
  for (const char* name : {"town_128", "campus_512"}) {
    const auto scenario = make_scenario_by_name(name);
    PlanConfig config;
    config.runs = 2;
    config.master_seed = 17;
    config.message_rate = 0.005;
    const auto plan = make_plan({scenario}, {"Epidemic", "FRESH"}, config);
    for (const std::size_t threads : {1u, 8u}) {
      SweepOptions dense;
      dense.threads = threads;
      dense.replay = forward::ReplayMode::kDense;
      SweepOptions sparse;
      sparse.threads = threads;
      sparse.replay = forward::ReplayMode::kSparse;
      expect_cells_identical(run_sweep(plan, dense), run_sweep(plan, sparse));
    }
  }
}

// The holder-incident fast path plus shared observation snapshots — the
// default SweepOptions — must reproduce the full-replay, per-run-
// observation oracle bit for bit on the conference matrix across the
// whole extended algorithm suite, at 1 and 8 threads.
TEST(Sweep, HolderIncidentSharedObservationMatchesOracleOnInfocomMatrix) {
  const auto scenario = make_scenario_by_name("conference_small");
  PlanConfig config;
  config.runs = 2;
  config.master_seed = 11;
  config.message_rate = 0.01;
  const auto plan =
      make_plan({scenario}, forward::extended_algorithm_names(), config);

  for (const std::size_t threads : {1u, 8u}) {
    SweepOptions oracle;
    oracle.threads = threads;
    oracle.contact_scan = forward::ContactScan::kFull;
    oracle.observation = ObservationMode::kPerRun;
    SweepOptions fast;
    fast.threads = threads;  // kHolderIncident + kShared defaults.
    expect_cells_identical(run_sweep(plan, oracle), run_sweep(plan, fast));
  }
}

// Same equivalence under contention: finite budgets, tight buffers with
// the RNG-consuming random eviction policy, and TTLs.
TEST(Sweep, HolderIncidentSharedObservationMatchesOracleUnderTraffic) {
  const auto ds = small_dataset(29);
  PlanConfig config;
  config.runs = 2;
  config.master_seed = 13;
  config.message_rate = 0.05;
  config.traffic.contact_budget_bytes = 2;
  config.traffic.buffer_capacity_bytes = 3;
  config.traffic.eviction = forward::EvictionPolicy::kRandom;
  config.message_ttl = 900.0;
  const auto plan = make_plan(
      {make_scenario(ds)}, {"FRESH", "PRoPHET", "Spray+Wait"}, config);

  SweepOptions oracle;
  oracle.threads = 8;
  oracle.contact_scan = forward::ContactScan::kFull;
  oracle.observation = ObservationMode::kPerRun;
  SweepOptions fast;
  fast.threads = 8;
  expect_cells_identical(run_sweep(plan, oracle), run_sweep(plan, fast));
}

// The refactored forwarding study rides the engine; its output must not
// depend on the thread count either.
TEST(ForwardingStudy, ThreadCountInvariant) {
  const auto ds = small_dataset(29);
  core::ForwardingStudyConfig config;
  config.runs = 3;
  config.message_rate = 0.02;

  config.threads = 1;
  const auto serial = core::run_forwarding_study(ds, config);
  config.threads = 8;
  const auto wide = core::run_forwarding_study(ds, config);

  ASSERT_EQ(serial.algorithms.size(), wide.algorithms.size());
  for (std::size_t a = 0; a < serial.algorithms.size(); ++a) {
    EXPECT_EQ(serial.algorithms[a].overall.success_rate,
              wide.algorithms[a].overall.success_rate);
    EXPECT_EQ(serial.algorithms[a].overall.average_delay,
              wide.algorithms[a].overall.average_delay);
    EXPECT_EQ(serial.algorithms[a].delays, wide.algorithms[a].delays);
    EXPECT_EQ(serial.algorithms[a].cost_per_message,
              wide.algorithms[a].cost_per_message);
  }
}

// An owning scenario (unlike make_scenario's caller-owned alias), so the
// cache is allowed to retain its context — the paths the LRU-budget and
// concurrency tests below exercise. Distinct names keep evict(name)
// targeted at the test's own entries.
Scenario owned_scenario(std::uint64_t seed, const std::string& name) {
  auto dataset = std::make_shared<core::Dataset>(small_dataset(seed));
  dataset->name = name;
  Scenario scenario;
  scenario.name = name;
  scenario.dataset = std::move(dataset);
  return scenario;
}

TEST(ScenarioContextCache, StatsEvictAndClear) {
  auto& cache = ScenarioContextCache::instance();
  const auto scenario = owned_scenario(101, "cache-stats");
  const auto before = cache.stats();

  auto held = cache.acquire(scenario);
  const auto bytes = ScenarioContextCache::context_bytes(*held);
  EXPECT_GT(bytes, 0u);
  auto after_miss = cache.stats();
  EXPECT_EQ(after_miss.misses, before.misses + 1);
  EXPECT_EQ(after_miss.resident_bytes, before.resident_bytes + bytes);
  EXPECT_EQ(after_miss.resident_contexts, before.resident_contexts + 1);

  auto again = cache.acquire(scenario);
  EXPECT_EQ(again.get(), held.get());
  EXPECT_EQ(cache.stats().hits, after_miss.hits + 1);

  // Retention alone keeps the context resident: with every strong ref
  // dropped, the next acquire is still a hit, not a rebuild.
  held.reset();
  again.reset();
  const auto builds = cache.graphs_built();
  (void)cache.acquire(scenario);
  EXPECT_EQ(cache.graphs_built(), builds);

  // Explicit eviction releases the retained context; the next acquire
  // rebuilds.
  EXPECT_EQ(cache.evict("cache-stats"), 1u);
  auto after_evict = cache.stats();
  EXPECT_EQ(after_evict.evictions, after_miss.evictions + 1);
  EXPECT_EQ(after_evict.resident_bytes, before.resident_bytes);
  (void)cache.acquire(scenario);
  EXPECT_EQ(cache.graphs_built(), builds + 1);

  // clear() releases everything this test (and anything else) retained.
  cache.clear();
  EXPECT_EQ(cache.stats().resident_bytes, 0u);
  EXPECT_EQ(cache.evict("cache-stats"), 0u);
}

TEST(ScenarioContextCache, ConcurrentAcquireBuildsOnce) {
  auto& cache = ScenarioContextCache::instance();
  const auto scenario = owned_scenario(103, "cache-concurrent");
  const auto builds = cache.graphs_built();

  std::shared_ptr<const ScenarioContext> a;
  std::shared_ptr<const ScenarioContext> b;
  std::thread first([&] { a = cache.acquire(scenario); });
  std::thread second([&] { b = cache.acquire(scenario); });
  first.join();
  second.join();

  // Exactly one build between the two racing acquires, and both callers
  // see the same context instance.
  EXPECT_EQ(cache.graphs_built(), builds + 1);
  ASSERT_TRUE(a != nullptr);
  EXPECT_EQ(a.get(), b.get());
  EXPECT_EQ(cache.evict("cache-concurrent"), 1u);
}

TEST(ScenarioContextCache, ByteBudgetBoundsResidencyWithLruEviction) {
  auto& cache = ScenarioContextCache::instance();
  const auto old_budget = cache.budget_bytes();
  cache.clear();  // start from empty residency; budget asserts are exact.

  const auto sa = owned_scenario(105, "cache-lru-a");
  const auto sb = owned_scenario(106, "cache-lru-b");
  auto ca = cache.acquire(sa);
  auto cb = cache.acquire(sb);
  const auto bytes_a = ScenarioContextCache::context_bytes(*ca);
  const auto bytes_b = ScenarioContextCache::context_bytes(*cb);
  ASSERT_LE(bytes_a + bytes_b, cache.budget_bytes());
  EXPECT_EQ(cache.stats().resident_bytes, bytes_a + bytes_b);

  // Touch a, then shrink the budget below a+b: the LRU victim must be b.
  (void)cache.acquire(sa);
  const auto evictions = cache.stats().evictions;
  cache.set_budget_bytes(bytes_a + bytes_b - 1);
  auto squeezed = cache.stats();
  EXPECT_LE(squeezed.resident_bytes, squeezed.budget_bytes);
  EXPECT_EQ(squeezed.resident_bytes, bytes_a);
  EXPECT_EQ(squeezed.evictions, evictions + 1);

  // With strong refs dropped: a (retained) is still a hit; b (evicted,
  // weak expired) rebuilds — and retaining the rebuilt b displaces a,
  // keeping residency under the budget at every step.
  ca.reset();
  cb.reset();
  const auto builds = cache.graphs_built();
  (void)cache.acquire(sa);
  EXPECT_EQ(cache.graphs_built(), builds);
  (void)cache.acquire(sb);
  EXPECT_EQ(cache.graphs_built(), builds + 1);
  EXPECT_LE(cache.stats().resident_bytes, cache.budget_bytes());

  // A context larger than the whole budget is served but never retained.
  cache.set_budget_bytes(1);
  EXPECT_EQ(cache.stats().resident_bytes, 0u);
  const auto sc = owned_scenario(107, "cache-lru-c");
  const auto cc = cache.acquire(sc);
  EXPECT_TRUE(cc != nullptr);
  EXPECT_EQ(cache.stats().resident_bytes, 0u);

  cache.set_budget_bytes(old_budget);
}

TEST(ScenarioContextCache, ObservationSnapshotsAreAccountedAndBudgeted) {
  auto& cache = ScenarioContextCache::instance();
  const auto old_budget = cache.budget_bytes();
  cache.clear();

  const auto scenario = owned_scenario(109, "cache-observations");
  auto context = cache.acquire(scenario);
  ASSERT_TRUE(context->observations != nullptr);
  const auto base_bytes = ScenarioContextCache::context_bytes(*context);
  EXPECT_EQ(cache.stats().resident_bytes, base_bytes);

  // Building a shared snapshot grows the context; whoever built it
  // re-accounts, and residency tracks the growth exactly.
  const auto fresh = forward::make_algorithm("FRESH");
  const auto [snapshot, built] = context->observations->get_or_build(
      fresh->shared_snapshot_key(), [&] {
        return fresh->build_shared_snapshot(*context->graph,
                                            context->dataset->trace);
      });
  ASSERT_TRUE(built);
  ASSERT_TRUE(snapshot != nullptr);
  EXPECT_GT(snapshot->bytes(), 0u);
  cache.reaccount(*context);
  const auto grown_bytes = ScenarioContextCache::context_bytes(*context);
  EXPECT_EQ(grown_bytes, base_bytes + context->observations->bytes());
  EXPECT_EQ(cache.stats().resident_bytes, grown_bytes);
  EXPECT_LE(cache.stats().resident_bytes, cache.stats().budget_bytes);

  // A second build under the same key is a hit — exactly one build per
  // key, and no double accounting.
  const auto [again, rebuilt] = context->observations->get_or_build(
      fresh->shared_snapshot_key(),
      [&]() -> ObservationStore::SnapshotPtr {
        ADD_FAILURE() << "snapshot rebuilt despite cache hit";
        return nullptr;
      });
  EXPECT_FALSE(rebuilt);
  EXPECT_EQ(again.get(), snapshot.get());

  // A distinct key (PRoPHET's parameterized predictabilities) builds its
  // own snapshot and grows the accounting again.
  const auto prophet = forward::make_algorithm("PRoPHET");
  const auto [prophet_snapshot, prophet_built] =
      context->observations->get_or_build(
          prophet->shared_snapshot_key(), [&] {
            return prophet->build_shared_snapshot(*context->graph,
                                                  context->dataset->trace);
          });
  EXPECT_TRUE(prophet_built);
  EXPECT_TRUE(prophet_snapshot != nullptr);
  cache.reaccount(*context);
  EXPECT_GT(ScenarioContextCache::context_bytes(*context), grown_bytes);
  EXPECT_EQ(cache.stats().resident_bytes,
            ScenarioContextCache::context_bytes(*context));
  EXPECT_LE(cache.stats().resident_bytes, cache.stats().budget_bytes);

  // Snapshots count against the byte budget like everything else: shrink
  // the budget below the grown context and re-account — the entry is
  // released (residency never exceeds the budget), while live holders
  // keep both context and snapshots valid.
  cache.set_budget_bytes(ScenarioContextCache::context_bytes(*context) - 1);
  EXPECT_EQ(cache.stats().resident_bytes, 0u);
  EXPECT_LE(cache.stats().resident_bytes, cache.stats().budget_bytes);
  EXPECT_GT(snapshot->bytes(), 0u);

  cache.set_budget_bytes(old_budget);
  (void)cache.evict("cache-observations");
}

// A sweep with the default shared-observation mode leaves the built
// snapshots on the scenario's cached context, so a second sweep (or a
// resident service's next request) pays zero snapshot builds.
TEST(Sweep, SharedSnapshotsPersistOnCachedContext) {
  const auto scenario = make_scenario_by_name("conference_small");
  auto context = ScenarioContextCache::instance().acquire(scenario);
  PlanConfig config;
  config.runs = 1;
  config.master_seed = 3;
  config.message_rate = 0.005;
  const auto plan = make_plan({scenario}, {"FRESH"}, config);
  (void)run_sweep(plan, {});
  const auto bytes_after_first = context->observations->bytes();
  EXPECT_GT(bytes_after_first, 0u);
  (void)run_sweep(plan, {});
  EXPECT_EQ(context->observations->bytes(), bytes_after_first);
}

// The engine-level coalescing lemma psn_serve's request batching rests
// on: per-run seeds never see the algorithm index, so a single-scenario
// plan with a merged algorithm axis produces per-algorithm cells
// bit-identical to standalone single-algorithm plans.
TEST(Sweep, MergedAlgorithmAxisMatchesStandalonePlans) {
  const auto ds = small_dataset(41);
  PlanConfig config;
  config.runs = 2;
  config.message_rate = 0.02;
  const std::vector<std::string> algorithms = {"Epidemic", "FRESH", "Greedy"};

  SweepOptions options;
  options.threads = 4;
  const auto merged =
      run_sweep(make_plan({make_scenario(ds)}, algorithms, config), options);

  for (std::size_t i = 0; i < algorithms.size(); ++i) {
    const auto standalone = run_sweep(
        make_plan({make_scenario(ds)}, {algorithms[i]}, config), options);
    const auto& a = merged.cell(0, i);
    const auto& b = standalone.cell(0, 0);
    EXPECT_EQ(a.algorithm, b.algorithm);
    EXPECT_EQ(a.overall.success_rate, b.overall.success_rate);
    EXPECT_EQ(a.overall.average_delay, b.overall.average_delay);
    EXPECT_EQ(a.overall.average_hops, b.overall.average_hops);
    EXPECT_EQ(a.overall.delivered, b.overall.delivered);
    EXPECT_EQ(a.cost_per_message, b.cost_per_message);
    EXPECT_EQ(a.delays, b.delays);
    EXPECT_EQ(a.messages_offered, b.messages_offered);
  }
}

// The shared-pool hook behind psn_serve: running several sweeps on one
// caller-owned pool produces the same cells as private per-sweep pools.
TEST(Sweep, CallerOwnedPoolMatchesPrivatePool) {
  const auto ds = small_dataset(43);
  PlanConfig config;
  config.runs = 2;
  config.message_rate = 0.02;
  const auto plan =
      make_plan({make_scenario(ds)}, {"Epidemic", "FRESH"}, config);

  SweepOptions private_pool;
  private_pool.threads = 3;
  const auto expected = run_sweep(plan, private_pool);

  ThreadPool shared(3);
  SweepOptions shared_pool;
  shared_pool.pool = &shared;
  for (int round = 0; round < 2; ++round) {
    const auto got = run_sweep(plan, shared_pool);
    EXPECT_EQ(got.threads, 3u);
    expect_cells_identical(expected, got);
  }
}

}  // namespace
}  // namespace psn::engine
