// Tests for psn::paths: the Path value type and the k-shortest valid path
// enumerator (Fig. 3), including validity rules: loop avoidance, minimal
// progress, first preference, and the zero-weight closure.

#include <gtest/gtest.h>

#include <vector>

#include "psn/paths/enumerator.hpp"
#include "psn/paths/explosion.hpp"
#include "psn/paths/path.hpp"

namespace psn::paths {
namespace {

using trace::Contact;
using trace::ContactTrace;

graph::SpaceTimeGraph make_graph(std::vector<Contact> cs, NodeId n,
                                 Seconds t_max, Seconds delta = 10.0) {
  return graph::SpaceTimeGraph(ContactTrace(std::move(cs), n, t_max), delta);
}

EnumerationResult run(const graph::SpaceTimeGraph& g, NodeId src, NodeId dst,
                      Seconds t0, std::size_t k = 2000) {
  EnumeratorConfig config;
  config.k = k;
  config.record_paths = true;
  return KPathEnumerator(g, config).enumerate(src, dst, t0);
}

std::uint64_t total_paths(const EnumerationResult& r) {
  std::uint64_t total = 0;
  for (const auto& d : r.deliveries) total += d.count;
  return total;
}

TEST(PathTest, OriginHasZeroHops) {
  const auto p = Path::origin(3, 7);
  EXPECT_EQ(p.hops(), 0u);
  EXPECT_EQ(p.last_node(), 3u);
  EXPECT_EQ(p.last_step(), 7u);
  EXPECT_TRUE(p.visits(3));
  EXPECT_FALSE(p.visits(4));
}

TEST(PathTest, ExtendAccumulates) {
  const auto p = Path::origin(0, 0).extend(1, 0).extend(2, 3);
  EXPECT_EQ(p.hops(), 2u);
  EXPECT_EQ(p.last_node(), 2u);
  EXPECT_EQ(p.last_step(), 3u);
  const auto seq = p.sequence();
  ASSERT_EQ(seq.size(), 3u);
  EXPECT_EQ(seq[0], (std::pair<NodeId, Step>{0, 0}));
  EXPECT_EQ(seq[1], (std::pair<NodeId, Step>{1, 0}));
  EXPECT_EQ(seq[2], (std::pair<NodeId, Step>{2, 3}));
}

TEST(PathTest, SharedSuffixIndependence) {
  const auto base = Path::origin(0, 0).extend(1, 1);
  const auto a = base.extend(2, 2);
  const auto b = base.extend(3, 2);
  EXPECT_TRUE(a.visits(2));
  EXPECT_FALSE(a.visits(3));
  EXPECT_TRUE(b.visits(3));
  EXPECT_FALSE(b.visits(2));
  EXPECT_EQ(base.hops(), 1u);
}

TEST(PathTest, MembershipCountMatchesHops) {
  // Loop-free: |members| = hops + 1 always.
  auto p = Path::origin(5, 0);
  for (NodeId v : {7u, 9u, 11u, 13u}) p = p.extend(v, p.last_step() + 1);
  EXPECT_EQ(p.members().count(), p.hops() + 1u);
}

TEST(Enumerator, DirectContactSingleFirstPreferencePath) {
  // Source meets destination at step 0 and also node 1; node 1 meets the
  // destination later. First preference: only the direct path is valid.
  const auto g = make_graph(
      {
          Contact::make(0, 2, 0.0, 5.0),
          Contact::make(0, 1, 0.0, 5.0),
          Contact::make(1, 2, 20.0, 25.0),
      },
      3, 60.0);
  const auto r = run(g, 0, 2, 0.0);
  ASSERT_EQ(total_paths(r), 1u);
  EXPECT_EQ(r.deliveries[0].hops, 1u);
  EXPECT_DOUBLE_EQ(r.deliveries[0].arrival, 10.0);
  const auto t1 = r.optimal_duration();
  ASSERT_TRUE(t1.has_value());
  EXPECT_DOUBLE_EQ(*t1, 10.0);
}

TEST(Enumerator, TwoHopChainOverTime) {
  const auto g = make_graph(
      {
          Contact::make(0, 1, 0.0, 5.0),    // step 0
          Contact::make(1, 2, 20.0, 25.0),  // step 2
      },
      3, 60.0);
  const auto r = run(g, 0, 2, 0.0);
  ASSERT_EQ(total_paths(r), 1u);
  const auto& d = r.deliveries[0];
  EXPECT_EQ(d.hops, 2u);
  EXPECT_DOUBLE_EQ(d.arrival, 30.0);
  const auto seq = d.path.sequence();
  ASSERT_EQ(seq.size(), 3u);
  EXPECT_EQ(seq[0].first, 0u);
  EXPECT_EQ(seq[1].first, 1u);
  EXPECT_EQ(seq[2].first, 2u);
}

TEST(Enumerator, ZeroWeightClosureSameStep) {
  // 0-1 and 1-2 in the same step: 0 -> 1 -> 2 arrives within the step.
  const auto g = make_graph(
      {
          Contact::make(0, 1, 0.0, 5.0),
          Contact::make(1, 2, 0.0, 5.0),
      },
      3, 30.0);
  const auto r = run(g, 0, 2, 0.0);
  ASSERT_EQ(total_paths(r), 1u);
  EXPECT_EQ(r.deliveries[0].hops, 2u);
  EXPECT_DOUBLE_EQ(r.deliveries[0].arrival, 10.0);
}

TEST(Enumerator, TwoDisjointRelaysTwoPaths) {
  // Two relays meet the source at step 0 and the destination at step 2.
  const auto g = make_graph(
      {
          Contact::make(0, 1, 0.0, 5.0),
          Contact::make(0, 2, 0.0, 5.0),
          Contact::make(1, 3, 20.0, 25.0),
          Contact::make(2, 3, 20.0, 25.0),
      },
      4, 60.0);
  const auto r = run(g, 0, 3, 0.0);
  EXPECT_EQ(total_paths(r), 2u);
  for (const auto& d : r.deliveries) EXPECT_EQ(d.hops, 2u);
}

TEST(Enumerator, PersistentContactPoolsTimeVariants) {
  // 0-1 in contact for 3 steps, then 1 meets 2: each step of the 0-1
  // contact spawns a formally distinct path (different relay step), all
  // pooled into one delivery with count 3.
  const auto g = make_graph(
      {
          Contact::make(0, 1, 0.0, 30.0),   // steps 0,1,2
          Contact::make(1, 2, 40.0, 45.0),  // step 4
      },
      3, 60.0);
  const auto r = run(g, 0, 2, 0.0);
  ASSERT_EQ(r.deliveries.size(), 1u);
  EXPECT_EQ(r.deliveries[0].count, 3u);
  EXPECT_EQ(total_paths(r), 3u);
}

TEST(Enumerator, LoopFreePathsOnly) {
  // Triangle active for many steps: all enumerated paths must be loop-free.
  const auto g = make_graph(
      {
          Contact::make(0, 1, 0.0, 50.0),
          Contact::make(1, 2, 0.0, 50.0),
          Contact::make(0, 2, 60.0, 65.0),
      },
      3, 100.0);
  const auto r = run(g, 0, 2, 0.0);
  for (const auto& d : r.deliveries) {
    const auto seq = d.path.sequence();
    EXPECT_TRUE(is_structurally_valid(seq, g, 0));
    EXPECT_EQ(seq.back().first, 2u);
  }
}

TEST(Enumerator, FirstPreferenceDropsHolderPaths) {
  // Node 1 receives the message at step 0, meets the destination at step 2
  // (delivers), and meets it again at step 4: the second meeting must NOT
  // produce another delivery of the same path (it was dropped).
  const auto g = make_graph(
      {
          Contact::make(0, 1, 0.0, 5.0),
          Contact::make(1, 2, 20.0, 25.0),
          Contact::make(1, 2, 40.0, 45.0),
      },
      3, 60.0);
  const auto r = run(g, 0, 2, 0.0);
  EXPECT_EQ(total_paths(r), 1u);
  EXPECT_DOUBLE_EQ(r.deliveries[0].arrival, 30.0);
}

TEST(Enumerator, FirstPreferenceInvalidatesThroughPaths) {
  // 0 -> 1 at step 0; 0 meets the destination at step 1 (direct delivery);
  // 1 meets the destination at step 3. The relayed path (0,1,2) contains
  // node 0, which met the destination at step 1 < step 3: not first
  // preference, so only the direct path counts.
  const auto g = make_graph(
      {
          Contact::make(0, 1, 0.0, 5.0),    // step 0
          Contact::make(0, 2, 10.0, 15.0),  // step 1
          Contact::make(1, 2, 30.0, 35.0),  // step 3
      },
      3, 60.0);
  const auto r = run(g, 0, 2, 0.0);
  EXPECT_EQ(total_paths(r), 1u);
  EXPECT_EQ(r.deliveries[0].hops, 1u);
  EXPECT_DOUBLE_EQ(r.deliveries[0].arrival, 20.0);
}

TEST(Enumerator, ArrivalIntoDstContactNodeDeliversImmediately) {
  // 1 is in contact with the destination when it receives the message from
  // 0: minimal progress delivers through 1 in the same step.
  const auto g = make_graph(
      {
          Contact::make(0, 1, 20.0, 25.0),
          Contact::make(1, 2, 20.0, 25.0),
      },
      3, 60.0);
  const auto r = run(g, 0, 2, 20.0);
  ASSERT_EQ(total_paths(r), 1u);
  EXPECT_EQ(r.deliveries[0].hops, 2u);
  EXPECT_DOUBLE_EQ(r.deliveries[0].arrival, 30.0);
}

TEST(Enumerator, DestinationNeverRelays) {
  // Any path through the destination is invalid; 0 -> 2(dst) -> 1 -> ...
  // must not exist. Build: 0-2 step 0, 2-1 step 1, 1-2 step 3. The only
  // valid delivery is the direct one at step 0.
  const auto g = make_graph(
      {
          Contact::make(0, 2, 0.0, 5.0),
          Contact::make(2, 1, 10.0, 15.0),
          Contact::make(1, 2, 30.0, 35.0),
      },
      3, 60.0);
  const auto r = run(g, 0, 2, 0.0);
  EXPECT_EQ(total_paths(r), 1u);
  EXPECT_EQ(r.deliveries[0].hops, 1u);
}

TEST(Enumerator, MessageStartAfterContactsUnreachable) {
  const auto g = make_graph({Contact::make(0, 1, 0.0, 5.0)}, 2, 60.0);
  const auto r = run(g, 0, 1, 30.0);
  EXPECT_FALSE(r.delivered());
  EXPECT_FALSE(r.optimal_duration().has_value());
}

TEST(Enumerator, TnNonDecreasing) {
  // Dense little network; check T_n ordering on whatever arrives.
  const auto g = make_graph(
      {
          Contact::make(0, 1, 0.0, 40.0),
          Contact::make(1, 2, 10.0, 50.0),
          Contact::make(2, 3, 20.0, 60.0),
          Contact::make(0, 3, 30.0, 70.0),
          Contact::make(1, 3, 50.0, 90.0),
      },
      4, 100.0);
  const auto r = run(g, 0, 3, 0.0);
  ASSERT_TRUE(r.delivered());
  const std::uint64_t total = total_paths(r);
  double prev = 0.0;
  for (std::uint64_t i = 1; i <= total; ++i) {
    const auto ti = r.duration_of(i);
    ASSERT_TRUE(ti.has_value());
    EXPECT_GE(*ti, prev);
    prev = *ti;
  }
  EXPECT_FALSE(r.duration_of(total + 1).has_value());
}

TEST(Enumerator, ReachedKStopsEnumeration) {
  // A hub network that generates many paths quickly; with k = 4 the
  // enumeration must stop at >= 4 total paths and set reached_k.
  std::vector<Contact> cs;
  for (int step = 0; step < 8; ++step) {
    for (NodeId relay = 1; relay <= 4; ++relay) {
      cs.push_back(Contact::make(0, relay, step * 10.0, step * 10.0 + 5.0));
      cs.push_back(
          Contact::make(relay, 5, step * 10.0 + 0.1, step * 10.0 + 5.0));
    }
  }
  const auto g = make_graph(std::move(cs), 6, 100.0);
  const auto r = run(g, 0, 5, 0.0, 4);
  EXPECT_TRUE(r.reached_k);
  EXPECT_GE(total_paths(r), 4u);
  EXPECT_TRUE(r.time_to_explosion(4).has_value());
}

TEST(Enumerator, TimeToExplosionComputation) {
  // First path through relay 1 arrives at t=20 (step 1); two more through
  // relays 2 and 3 arrive at t=50 (step 4): TE for k=3 is 30.
  const auto g = make_graph(
      {
          Contact::make(0, 1, 0.0, 5.0),    // step 0
          Contact::make(1, 4, 10.0, 15.0),  // step 1: first delivery
          Contact::make(0, 2, 20.0, 25.0),  // step 2
          Contact::make(0, 3, 20.0, 25.0),  // step 2
          Contact::make(2, 4, 40.0, 45.0),  // step 4
          Contact::make(3, 4, 40.0, 45.0),  // step 4
      },
      5, 60.0);
  const auto r = run(g, 0, 4, 0.0, 3);
  ASSERT_TRUE(r.reached_k);
  const auto t1 = r.optimal_duration();
  ASSERT_TRUE(t1.has_value());
  EXPECT_DOUBLE_EQ(*t1, 20.0);
  const auto te = r.time_to_explosion(3);
  ASSERT_TRUE(te.has_value());
  EXPECT_DOUBLE_EQ(*te, 30.0);
}

TEST(Enumerator, DeliveriesSortedByHopsWithinStep) {
  // Direct path and 2-hop path arrive in the same step; shorter first.
  const auto g = make_graph(
      {
          Contact::make(0, 1, 0.0, 5.0),    // step 0: reach relay
          Contact::make(0, 2, 10.0, 15.0),  // step 1: direct
          Contact::make(1, 2, 10.0, 15.0),  // step 1: via relay
      },
      3, 60.0);
  const auto r = run(g, 0, 2, 0.0);
  ASSERT_EQ(r.deliveries.size(), 2u);
  EXPECT_LE(r.deliveries[0].hops, r.deliveries[1].hops);
  EXPECT_EQ(r.deliveries[0].hops, 1u);
  EXPECT_EQ(r.deliveries[1].hops, 2u);
}

TEST(Enumerator, RecordPathsOffStillCounts) {
  const auto g = make_graph(
      {
          Contact::make(0, 1, 0.0, 5.0),
          Contact::make(1, 2, 20.0, 25.0),
      },
      3, 60.0);
  EnumeratorConfig config;
  config.k = 2000;
  config.record_paths = false;
  const auto r = KPathEnumerator(g, config).enumerate(0, 2, 0.0);
  ASSERT_EQ(total_paths(r), 1u);
  EXPECT_FALSE(r.deliveries[0].path.valid());
  EXPECT_EQ(r.deliveries[0].hops, 2u);
}

TEST(Enumerator, RejectsBadArguments) {
  const auto g = make_graph({Contact::make(0, 1, 0.0, 5.0)}, 2, 60.0);
  const KPathEnumerator e(g);
  EXPECT_THROW((void)e.enumerate(0, 0, 0.0), std::invalid_argument);
  EXPECT_THROW((void)e.enumerate(0, 9, 0.0), std::invalid_argument);
  EXPECT_THROW((void)KPathEnumerator(g, EnumeratorConfig{0, true}),
               std::invalid_argument);
}

TEST(Enumerator, AllRecordedPathsStructurallyValid) {
  // Random-ish handmade mess; every recorded path must validate.
  const auto g = make_graph(
      {
          Contact::make(0, 1, 0.0, 35.0),
          Contact::make(1, 2, 5.0, 45.0),
          Contact::make(2, 3, 12.0, 50.0),
          Contact::make(3, 4, 22.0, 60.0),
          Contact::make(0, 4, 41.0, 44.0),
          Contact::make(1, 4, 55.0, 80.0),
          Contact::make(2, 4, 61.0, 62.0),
      },
      5, 100.0);
  const auto r = run(g, 0, 4, 0.0);
  ASSERT_TRUE(r.delivered());
  for (const auto& d : r.deliveries) {
    const auto seq = d.path.sequence();
    EXPECT_TRUE(is_structurally_valid(seq, g, 0)) << "hops=" << d.hops;
    EXPECT_EQ(seq.back().first, 4u);
    EXPECT_EQ(seq.size(), static_cast<std::size_t>(d.hops) + 1u);
  }
}

TEST(Enumerator, KOneStopsAtFirstDelivery) {
  const auto g = make_graph(
      {
          Contact::make(0, 1, 0.0, 5.0),
          Contact::make(1, 2, 20.0, 25.0),
          Contact::make(0, 2, 40.0, 45.0),
      },
      3, 60.0);
  const auto r = run(g, 0, 2, 0.0, 1);
  EXPECT_TRUE(r.reached_k);
  EXPECT_EQ(total_paths(r), 1u);
  EXPECT_DOUBLE_EQ(r.deliveries[0].arrival, 30.0);  // via relay, step 2.
}

TEST(Enumerator, MessageAtLastStepStillWorks) {
  const auto g = make_graph(
      {
          Contact::make(0, 1, 50.0, 59.0),  // final step
      },
      2, 60.0);
  const auto r = run(g, 0, 1, 55.0);
  ASSERT_TRUE(r.delivered());
  EXPECT_DOUBLE_EQ(r.deliveries[0].arrival, 60.0);
}

TEST(Enumerator, SameMessageEnumeratedTwiceIsIdentical) {
  const auto g = make_graph(
      {
          Contact::make(0, 1, 0.0, 35.0),
          Contact::make(1, 2, 5.0, 45.0),
          Contact::make(0, 3, 12.0, 50.0),
          Contact::make(3, 2, 22.0, 60.0),
      },
      4, 100.0);
  EnumeratorConfig config;
  config.k = 100;
  const KPathEnumerator e(g, config);
  const auto a = e.enumerate(0, 2, 0.0);
  const auto b = e.enumerate(0, 2, 0.0);
  ASSERT_EQ(a.deliveries.size(), b.deliveries.size());
  for (std::size_t i = 0; i < a.deliveries.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.deliveries[i].arrival, b.deliveries[i].arrival);
    EXPECT_EQ(a.deliveries[i].hops, b.deliveries[i].hops);
    EXPECT_EQ(a.deliveries[i].count, b.deliveries[i].count);
  }
}

TEST(Enumerator, GrowthCumulativeNonDecreasing) {
  const auto g = make_graph(
      {
          Contact::make(0, 1, 0.0, 30.0),
          Contact::make(1, 2, 10.0, 50.0),
          Contact::make(2, 3, 20.0, 70.0),
          Contact::make(1, 3, 60.0, 90.0),
      },
      4, 100.0);
  const auto r = run(g, 0, 3, 0.0, 50);
  ASSERT_TRUE(r.delivered());
  const auto rec = make_explosion_record(r, 50);
  std::uint64_t prev = 0;
  double prev_offset = -1.0;
  for (const auto& gp : rec.growth) {
    EXPECT_GE(gp.cumulative, prev);
    EXPECT_GT(gp.offset, prev_offset);
    prev = gp.cumulative;
    prev_offset = gp.offset;
  }
}

// Bit-identical semantic comparison of two enumeration outcomes.
// steps_replayed is excluded: it legitimately differs between replay
// modes (kDense also visits contact-free steps).
void expect_identical(const EnumerationResult& a, const EnumerationResult& b) {
  EXPECT_EQ(a.reached_k, b.reached_k);
  ASSERT_EQ(a.deliveries.size(), b.deliveries.size());
  for (std::size_t i = 0; i < a.deliveries.size(); ++i) {
    EXPECT_EQ(a.deliveries[i].arrival, b.deliveries[i].arrival);
    EXPECT_EQ(a.deliveries[i].step, b.deliveries[i].step);
    EXPECT_EQ(a.deliveries[i].hops, b.deliveries[i].hops);
    EXPECT_EQ(a.deliveries[i].count, b.deliveries[i].count);
    EXPECT_EQ(a.deliveries[i].path.valid(), b.deliveries[i].path.valid());
    if (a.deliveries[i].path.valid()) {
      EXPECT_EQ(a.deliveries[i].path.sequence(),
                b.deliveries[i].path.sequence());
    }
  }
  EXPECT_EQ(a.effort.contact_events, b.effort.contact_events);
  EXPECT_EQ(a.effort.peak_stored_paths, b.effort.peak_stored_paths);
  EXPECT_EQ(a.effort.truncated_candidates, b.effort.truncated_candidates);
}

// A two-burst trace separated by a long contact-free gap: the sparse
// replay must skip the silence without changing anything.
graph::SpaceTimeGraph gap_graph() {
  std::vector<Contact> cs;
  for (const double base : {0.0, 5000.0}) {
    cs.push_back(Contact::make(0, 1, base + 0.0, base + 15.0));
    cs.push_back(Contact::make(1, 2, base + 10.0, base + 25.0));
    cs.push_back(Contact::make(2, 3, base + 20.0, base + 35.0));
    cs.push_back(Contact::make(0, 3, base + 40.0, base + 46.0));
  }
  return make_graph(std::move(cs), 4, 10000.0);
}

TEST(Enumerator, SparseMatchesDenseAcrossGaps) {
  const auto g = gap_graph();
  ASSERT_GT(g.num_steps(), 900u);
  ASSERT_LT(g.num_active_steps(), 20u);
  for (const NodeId dst : {1u, 2u, 3u}) {
    for (const double t0 : {0.0, 30.0, 2000.0, 5005.0}) {
      EnumeratorConfig sparse;
      sparse.record_paths = true;
      EnumeratorConfig dense = sparse;
      dense.replay = ReplayMode::kDense;
      const auto a = KPathEnumerator(g, sparse).enumerate(0, dst, t0);
      const auto b = KPathEnumerator(g, dense).enumerate(0, dst, t0);
      expect_identical(a, b);
      // The sparse replay never visits more steps than the timeline has;
      // the dense oracle walks the whole remaining window.
      EXPECT_LE(a.effort.steps_replayed, g.num_active_steps());
      EXPECT_GE(b.effort.steps_replayed, a.effort.steps_replayed);
    }
  }
}

TEST(Enumerator, WorkspaceHistoryCannotInfluenceResults) {
  // Enumerate a reference message on a fresh workspace, then drag another
  // workspace through unrelated messages on *different graphs* and
  // re-enumerate: bit-identical output is required — this is what makes
  // the parallel path sweep independent of which thread's (warm)
  // workspace a message lands on.
  const auto g = gap_graph();
  const auto other = make_graph(
      {
          Contact::make(0, 1, 0.0, 40.0),
          Contact::make(1, 2, 10.0, 50.0),
          Contact::make(2, 3, 20.0, 60.0),
          Contact::make(0, 3, 30.0, 70.0),
          Contact::make(1, 3, 50.0, 90.0),
          Contact::make(4, 5, 0.0, 90.0),
          Contact::make(3, 4, 35.0, 80.0),
      },
      6, 100.0);

  EnumeratorConfig config;
  config.k = 25;
  config.record_paths = true;
  const KPathEnumerator on_gap(g, config);
  const KPathEnumerator on_other(other, config);

  EnumeratorWorkspace fresh;
  const auto reference = on_gap.enumerate(0, 3, 0.0, fresh);

  EnumeratorWorkspace dirty;
  for (const NodeId src : {0u, 1u, 4u}) {
    for (const NodeId dst : {2u, 3u, 5u}) {
      if (src != dst) (void)on_other.enumerate(src, dst, 0.0, dirty);
    }
  }
  (void)on_gap.enumerate(2, 1, 4990.0, dirty);
  const auto warmed = on_gap.enumerate(0, 3, 0.0, dirty);

  expect_identical(reference, warmed);
  EXPECT_EQ(reference.effort.steps_replayed, warmed.effort.steps_replayed);
}

TEST(Enumerator, EffortCountsTruncationAndPeakStorage) {
  // A hub network generating many same-length paths with a tiny k: the
  // per-node k-truncation must reject candidates, and the peak storage
  // must exceed the trivial origin entry.
  std::vector<Contact> cs;
  for (int step = 0; step < 8; ++step) {
    for (NodeId relay = 1; relay <= 4; ++relay) {
      cs.push_back(Contact::make(0, relay, step * 10.0, step * 10.0 + 5.0));
      for (NodeId peer = relay + 1; peer <= 4; ++peer)
        cs.push_back(
            Contact::make(relay, peer, step * 10.0, step * 10.0 + 5.0));
    }
  }
  const auto g = make_graph(std::move(cs), 6, 100.0);
  const auto r = run(g, 0, 5, 0.0, 2);  // k = 2, destination never met.
  EXPECT_FALSE(r.delivered());
  EXPECT_GT(r.effort.truncated_candidates, 0u);
  EXPECT_GT(r.effort.peak_stored_paths, 1u);
  EXPECT_GT(r.effort.contact_events, 0u);
  EXPECT_GT(r.effort.steps_replayed, 0u);
}

TEST(Enumerator, EffortStepsReplayedBoundedByTimeline) {
  const auto g = make_graph(
      {
          Contact::make(0, 1, 0.0, 5.0),
          Contact::make(1, 2, 500.0, 505.0),
      },
      3, 1000.0);
  const auto r = run(g, 0, 2, 0.0);
  ASSERT_TRUE(r.delivered());
  // Two active steps, and enumeration ends early once nothing is stored.
  EXPECT_LE(r.effort.steps_replayed, g.num_active_steps());
  EXPECT_EQ(r.effort.contact_events, 2u);
}

TEST(StructuralValidity, DetectsViolations) {
  const auto g = make_graph(
      {
          Contact::make(0, 1, 0.0, 5.0),
          Contact::make(1, 2, 20.0, 25.0),
      },
      3, 60.0);
  // Valid chain.
  EXPECT_TRUE(is_structurally_valid({{0, 0}, {1, 0}, {2, 2}}, g, 0));
  // Wrong source.
  EXPECT_FALSE(is_structurally_valid({{1, 0}, {0, 0}}, g, 0));
  // Missing contact.
  EXPECT_FALSE(is_structurally_valid({{0, 0}, {2, 0}}, g, 0));
  // Time reversal.
  EXPECT_FALSE(is_structurally_valid({{0, 2}, {1, 0}}, g, 0));
  // Repeated node.
  EXPECT_FALSE(
      is_structurally_valid({{0, 0}, {1, 0}, {0, 0}}, g, 0));
  // Empty.
  EXPECT_FALSE(is_structurally_valid({}, g, 0));
}

}  // namespace
}  // namespace psn::paths
