// End-to-end integration: a miniature version of the paper's full pipeline
// on one synthetic conference window, asserting the headline qualitative
// claims. This is the repo's reproduction smoke test; the bench binaries
// print the full-size versions.

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <vector>

#include "psn/core/forwarding_study.hpp"
#include "psn/core/path_study.hpp"
#include "psn/engine/scenario_registry.hpp"
#include "psn/engine/sweep.hpp"
#include "psn/stats/cdf.hpp"
#include "psn/synth/conference.hpp"

namespace psn {
namespace {

core::Dataset mini_dataset() {
  synth::ConferenceConfig config;
  config.mobile_nodes = 40;
  config.stationary_nodes = 8;
  config.t_max = 2.0 * 3600.0;
  config.mean_node_rate = 0.02;
  config.scan_interval = 120.0;
  config.modulation = synth::default_conference_modulation(config.t_max);
  config.seed = 0xE2E;
  auto generated = synth::generate_conference(config);

  core::Dataset ds;
  ds.name = "mini-conference";
  ds.trace = std::move(generated.trace);
  ds.rates = trace::classify_rates(ds.trace);
  ds.message_horizon = 1.0 * 3600.0;
  return ds;
}

TEST(Integration, PathExplosionHeadline) {
  // Claim (§4.2): once the first path arrives, many follow quickly — TE is
  // typically far smaller than T1's spread.
  const auto ds = mini_dataset();
  core::PathStudyConfig config;
  config.messages = 40;
  config.k = 200;
  config.seed = 3;
  const auto result = run_path_study(ds, config);

  const stats::EmpiricalCdf t1(result.optimal_durations());
  const stats::EmpiricalCdf te(result.times_to_explosion());
  ASSERT_GE(t1.size(), 20u);
  ASSERT_GE(te.size(), 10u);
  // Explosion concentration: the typical TE is much smaller than the
  // typical T1 spread (order-of-magnitude separation in the tails).
  EXPECT_LT(te.quantile(0.75), std::max(t1.quantile(0.9), 60.0));
  // Most exploded messages exploded fast.
  EXPECT_GE(te.at(150.0), 0.6);
}

TEST(Integration, QuadrantOrderingHeadline) {
  // Claim (§5.2): T1 keyed to the source class, TE to the destination
  // class. Check on pooled quadrant means with a generous sample.
  const auto ds = mini_dataset();
  core::PathStudyConfig config;
  config.messages = 120;
  config.k = 200;
  config.seed = 11;
  const auto result = run_path_study(ds, config);

  double t1_sum[4] = {0, 0, 0, 0};
  std::size_t t1_n[4] = {0, 0, 0, 0};
  for (std::size_t q = 0; q < 4; ++q) {
    for (const auto& rec :
         result.quadrants.of(static_cast<core::Quadrant>(q))) {
      if (!rec.delivered) continue;
      t1_sum[q] += rec.optimal_duration;
      ++t1_n[q];
    }
  }
  // in-in vs out-in and in-out vs out-out compare source classes with the
  // destination class held fixed.
  const auto mean = [&](std::size_t q) {
    return t1_n[q] ? t1_sum[q] / static_cast<double>(t1_n[q]) : 0.0;
  };
  if (t1_n[0] >= 5 && t1_n[2] >= 5) {
    EXPECT_LT(mean(0), mean(2) * 1.5);
  }
  if (t1_n[1] >= 5 && t1_n[3] >= 5) {
    EXPECT_LT(mean(1), mean(3) * 1.5);
  }
}

TEST(Integration, AlgorithmSimilarityHeadline) {
  // Claim (§6.2): the six algorithms' success rates cluster; Epidemic
  // bounds everyone; pair type matters more than algorithm.
  const auto ds = mini_dataset();
  core::ForwardingStudyConfig config;
  config.runs = 2;
  config.message_rate = 0.02;
  config.seed = 5;
  const auto result = run_forwarding_study(ds, config);
  ASSERT_EQ(result.algorithms.size(), 6u);

  const double epidemic_s = result.algorithms[0].overall.success_rate;
  ASSERT_GT(epidemic_s, 0.3);
  for (const auto& study : result.algorithms) {
    EXPECT_LE(study.overall.success_rate, epidemic_s + 1e-12)
        << study.overall.algorithm;
    // No forwarding chain may be silently truncated at paper scale.
    EXPECT_EQ(study.truncated_relay_steps, 0u) << study.overall.algorithm;
  }
  // The epidemic hop fix: delivered floods carry real hop counts.
  EXPECT_GT(result.algorithms[0].overall.average_hops, 0.0);

  // Pair-type effect: for Epidemic itself, in-in success should beat
  // out-out success (delivery to rarely-seen nodes is the hard case).
  const auto& epidemic_types = result.algorithms[0].by_pair_type.per_type;
  if (epidemic_types[0].messages >= 10 && epidemic_types[3].messages >= 10) {
    EXPECT_GE(epidemic_types[0].success_rate,
              epidemic_types[3].success_rate);
  }
}

TEST(Integration, CostExtensionHeadline) {
  // Extension: Epidemic's transmission cost dwarfs single-copy schemes.
  const auto ds = mini_dataset();
  core::ForwardingStudyConfig config;
  config.runs = 1;
  config.message_rate = 0.02;
  config.seed = 7;
  const auto result = run_forwarding_study(ds, config);
  const double epidemic_cost = result.algorithms[0].cost_per_message;
  const double fresh_cost = result.algorithms[1].cost_per_message;
  EXPECT_GT(epidemic_cost, 4.0 * std::max(fresh_cost, 0.5));
  for (const auto& study : result.algorithms)
    EXPECT_EQ(study.truncated_relay_steps, 0u) << study.overall.algorithm;
}

TEST(Integration, CityScaleSweepRunsEndToEnd) {
  // The scale-up acceptance check: a 2048-node scenario through run_sweep,
  // epidemic plus a single-copy scheme, end to end. Sixteen times the
  // historical 128-node ceiling.
  const auto scenario = engine::make_scenario_by_name("city_2048");
  ASSERT_EQ(scenario.dataset->trace.num_nodes(), 2048u);
  ASSERT_GT(scenario.dataset->trace.size(), 10000u);

  engine::PlanConfig config;
  config.runs = 1;
  config.master_seed = 11;
  config.message_rate = 0.002;  // ~14 messages; scale is in N, not load.
  const auto plan =
      engine::make_plan({scenario}, {"Epidemic", "FRESH"}, config);

  engine::SweepOptions options;
  options.threads = 2;
  const auto result = engine::run_sweep(plan, options);
  ASSERT_EQ(result.cells.size(), 2u);

  const auto& epidemic = result.cells[0];
  const auto& fresh = result.cells[1];
  // The flood is the upper bound and must actually deliver at this scale.
  EXPECT_GT(epidemic.overall.delivered, 0u);
  EXPECT_GE(epidemic.overall.success_rate,
            fresh.overall.success_rate - 1e-12);
  // Delivered floods carry real hop counts through the closure.
  EXPECT_GT(epidemic.overall.average_hops, 0.0);
  // No silent relay truncation, even at city scale.
  EXPECT_EQ(epidemic.truncated_relay_steps, 0u);
  EXPECT_EQ(fresh.truncated_relay_steps, 0u);

  // Equivalence at city scale: the sparse event timeline (the default
  // above) must match the dense reference replay bit for bit, and stay
  // thread-count invariant. The scenario handle keeps the dataset and
  // graph cached, so these sweeps rebuild neither.
  engine::SweepOptions dense;
  dense.threads = 2;
  dense.replay = forward::ReplayMode::kDense;
  const auto reference = engine::run_sweep(plan, dense);
  std::vector<engine::SweepResult> sparse_results;
  for (const std::size_t threads : {1u, 8u}) {
    engine::SweepOptions sparse;
    sparse.threads = threads;
    sparse_results.push_back(engine::run_sweep(plan, sparse));
  }
  for (const auto& other :
       {std::cref(result), std::cref(sparse_results[0]),
        std::cref(sparse_results[1])}) {
    ASSERT_EQ(other.get().cells.size(), reference.cells.size());
    for (std::size_t c = 0; c < reference.cells.size(); ++c) {
      const auto& a = reference.cells[c];
      const auto& b = other.get().cells[c];
      EXPECT_EQ(a.overall.delivered, b.overall.delivered);
      EXPECT_EQ(a.overall.success_rate, b.overall.success_rate);
      EXPECT_EQ(a.overall.average_delay, b.overall.average_delay);
      EXPECT_EQ(a.overall.average_hops, b.overall.average_hops);
      EXPECT_EQ(a.cost_per_message, b.cost_per_message);
      EXPECT_EQ(a.delays, b.delays);
      EXPECT_EQ(a.truncated_relay_steps, b.truncated_relay_steps);
    }
  }
}

}  // namespace
}  // namespace psn
