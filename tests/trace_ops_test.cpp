// Tests for psn::trace trace composition operations.

#include <gtest/gtest.h>

#include <array>

#include "psn/trace/trace_ops.hpp"

namespace psn::trace {
namespace {

TEST(MergeTraces, UnionsContacts) {
  const ContactTrace a({Contact::make(0, 1, 0.0, 5.0)}, 3, 100.0);
  const ContactTrace b({Contact::make(1, 2, 50.0, 55.0)}, 3, 200.0);
  const std::array<ContactTrace, 2> traces{a, b};
  const auto merged = merge_traces(traces);
  EXPECT_EQ(merged.size(), 2u);
  EXPECT_DOUBLE_EQ(merged.t_max(), 200.0);
  EXPECT_EQ(merged.num_nodes(), 3u);
}

TEST(MergeTraces, RejectsMismatchedPopulations) {
  const ContactTrace a({Contact::make(0, 1, 0.0, 5.0)}, 3, 100.0);
  const ContactTrace b({Contact::make(0, 1, 0.0, 5.0)}, 4, 100.0);
  const std::array<ContactTrace, 2> traces{a, b};
  EXPECT_THROW((void)merge_traces(traces), std::invalid_argument);
}

TEST(MergeTraces, RejectsEmptyInput) {
  EXPECT_THROW((void)merge_traces({}), std::invalid_argument);
}

TEST(Coalesce, MergesOverlappingSightings) {
  const ContactTrace trace(
      {
          Contact::make(0, 1, 0.0, 10.0),
          Contact::make(0, 1, 5.0, 20.0),   // overlaps
          Contact::make(0, 1, 20.0, 25.0),  // touches
          Contact::make(0, 1, 40.0, 45.0),  // separate
      },
      2, 100.0);
  const auto clean = coalesce_contacts(trace);
  ASSERT_EQ(clean.size(), 2u);
  EXPECT_DOUBLE_EQ(clean[0].start, 0.0);
  EXPECT_DOUBLE_EQ(clean[0].end, 25.0);
  EXPECT_DOUBLE_EQ(clean[1].start, 40.0);
}

TEST(Coalesce, DifferentPairsNotMerged) {
  const ContactTrace trace(
      {
          Contact::make(0, 1, 0.0, 10.0),
          Contact::make(0, 2, 5.0, 15.0),
      },
      3, 100.0);
  EXPECT_EQ(coalesce_contacts(trace).size(), 2u);
}

TEST(RestrictTo, RelabelsAndFilters) {
  const ContactTrace trace(
      {
          Contact::make(0, 1, 0.0, 5.0),
          Contact::make(1, 2, 10.0, 15.0),
          Contact::make(2, 3, 20.0, 25.0),
      },
      4, 100.0);
  const std::array<NodeId, 2> keep{1, 3};
  const auto sub = restrict_to(trace, keep);
  EXPECT_EQ(sub.num_nodes(), 2u);
  // Only contacts fully inside {1, 3} survive: none here.
  EXPECT_EQ(sub.size(), 0u);

  const std::array<NodeId, 3> keep2{2, 3, 1};
  const auto sub2 = restrict_to(trace, keep2);
  EXPECT_EQ(sub2.num_nodes(), 3u);
  ASSERT_EQ(sub2.size(), 2u);
  // Contact (1,2) -> relabelled (2,0); Contact (2,3) -> (0,1).
  EXPECT_EQ(sub2[0].a, 0u);
  EXPECT_EQ(sub2[0].b, 2u);
  EXPECT_EQ(sub2[1].a, 0u);
  EXPECT_EQ(sub2[1].b, 1u);
}

TEST(RestrictTo, RejectsBadIds) {
  const ContactTrace trace({Contact::make(0, 1, 0.0, 5.0)}, 2, 100.0);
  const std::array<NodeId, 1> bad{7};
  EXPECT_THROW((void)restrict_to(trace, bad), std::invalid_argument);
  const std::array<NodeId, 2> dup{0, 0};
  EXPECT_THROW((void)restrict_to(trace, dup), std::invalid_argument);
}

TEST(Concat, ShiftsSecondTrace) {
  const ContactTrace a({Contact::make(0, 1, 0.0, 5.0)}, 2, 100.0);
  const ContactTrace b({Contact::make(0, 1, 10.0, 15.0)}, 2, 50.0);
  const auto joined = concat_traces(a, b);
  ASSERT_EQ(joined.size(), 2u);
  EXPECT_DOUBLE_EQ(joined.t_max(), 150.0);
  EXPECT_DOUBLE_EQ(joined[1].start, 110.0);
  EXPECT_DOUBLE_EQ(joined[1].end, 115.0);
}

TEST(Concat, RejectsMismatchedPopulations) {
  const ContactTrace a({Contact::make(0, 1, 0.0, 5.0)}, 2, 100.0);
  const ContactTrace b({Contact::make(0, 1, 0.0, 5.0)}, 3, 100.0);
  EXPECT_THROW((void)concat_traces(a, b), std::invalid_argument);
}

TEST(Compose, CoalesceAfterMergeRoundTrip) {
  // Merging two noisy copies of the same session then coalescing yields
  // the clean session.
  const ContactTrace s1({Contact::make(0, 1, 0.0, 10.0)}, 2, 100.0);
  const ContactTrace s2({Contact::make(0, 1, 5.0, 12.0)}, 2, 100.0);
  const std::array<ContactTrace, 2> traces{s1, s2};
  const auto clean = coalesce_contacts(merge_traces(traces));
  ASSERT_EQ(clean.size(), 1u);
  EXPECT_DOUBLE_EQ(clean[0].start, 0.0);
  EXPECT_DOUBLE_EQ(clean[0].end, 12.0);
}

}  // namespace
}  // namespace psn::trace
